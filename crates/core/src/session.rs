//! The unified assembly surface: a [`Backend`] value names the execution
//! target, an [`AssemblySession`] binds it to an assembly configuration,
//! and [`AssemblySession::assemble`] drives any [`IntoBatchSource`] through
//! the paper's record → plan → replay pipeline, reporting through one
//! nested [`AssemblyReport`] regardless of target.
//!
//! ```
//! use sc_core::{AssemblySession, Backend, ScConfig};
//! # use sc_core::BatchItem;
//! # use sc_factor::SparseCholesky;
//! # use sc_sparse::Coo;
//! # let mut c = Coo::new(3, 3);
//! # for i in 0..3 { c.push(i, i, 4.0); }
//! # c.push(1, 0, -1.0); c.push(0, 1, -1.0);
//! # c.push(2, 1, -1.0); c.push(1, 2, -1.0);
//! # let k = c.to_csc();
//! # let chol = SparseCholesky::factorize(&k, Default::default()).unwrap();
//! # let l = chol.factor_csc();
//! # let mut b = Coo::new(3, 2);
//! # b.push(0, 0, 1.0); b.push(2, 1, -1.0);
//! # let bt = b.to_csc().permute_rows(chol.perm());
//! # let items = vec![BatchItem { l: &l, bt: &bt }];
//! let session = AssemblySession::new(Backend::cpu(), ScConfig::optimized(false, false));
//! let result = session.assemble(&items);
//! assert_eq!(result.f.len(), items.len());
//! assert!(result.report.devices.is_empty(), "CPU runs touch no device");
//! ```
//!
//! Swapping the target is a one-line change — the numerics are bitwise
//! identical across every backend (the record/replay execution computes on
//! the host either way):
//!
//! ```no_run
//! # use sc_core::{AssemblySession, Backend, ScConfig};
//! # use sc_gpu::{Device, DevicePool, DeviceSpec};
//! # let items: Vec<sc_core::BatchItem> = Vec::new();
//! let gpu = AssemblySession::new(
//!     Backend::gpu(Device::new(DeviceSpec::a100(), 4)),
//!     ScConfig::Auto,
//! );
//! let cluster = AssemblySession::new(
//!     Backend::cluster(DevicePool::uniform(DeviceSpec::a100(), 4, 4)),
//!     ScConfig::Auto,
//! );
//! assert_eq!(gpu.assemble(&items).f, cluster.assemble(&items).f);
//! ```

use crate::assemble::ScConfig;
use crate::batch::{
    batch_cluster_impl, batch_cpu, batch_scheduled, BatchReport, ClusterOptions, ClusterReport,
    SubdomainTiming,
};
use crate::schedule::{
    estimate_cost_of, plan_topology, ClusterPlanError, CostEstimate, Formulation, HybridPlan,
    ScheduleOptions, ScheduledSpan, Topology,
};
use crate::source::{BatchSource, IntoBatchSource};
use sc_dense::{Mat, MatOf, Scalar};
use sc_gpu::{Device, DevicePool, NodePool, SimSpan, TraceEvent};
use sc_sparse::CscOf;
use std::borrow::Cow;
use std::sync::Arc;
use std::time::Instant;

/// Working precision of the assembly/solve numerics.
///
/// [`Precision::F64`] is the historical behaviour and stays **bitwise
/// identical** to the pre-precision pipeline. [`Precision::F32Refined`]
/// assembles and factors in `f32` — halving every value-byte term in the
/// transfer/arena cost model, so schedulers admit roughly twice the
/// subdomains per arena — and recovers `f64`-level accuracy with iterative
/// refinement in the outer FETI solve (`sc_feti`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum Precision {
    /// Full `f64` throughout.
    #[default]
    F64,
    /// `f32` working precision with `f64` iterative refinement on top.
    F32Refined {
        /// Relative residual the refinement loop drives toward (in `f64`).
        refine_tol: f64,
        /// Refinement iterations allowed before the solve falls back to a
        /// full `f64` pass.
        max_refine: usize,
    },
}

impl Precision {
    /// The `f32`-refined mode under default refinement limits
    /// (`refine_tol = 1e-10`, `max_refine = 40`).
    pub fn f32_refined() -> Self {
        Precision::F32Refined {
            refine_tol: 1e-10,
            max_refine: 40,
        }
    }

    /// Bytes of one matrix element in the working precision (4 or 8).
    pub fn elem_bytes(&self) -> usize {
        match self {
            Precision::F64 => 8,
            Precision::F32Refined { .. } => 4,
        }
    }

    /// Stable lowercase name (diagnostics, bench records).
    pub fn name(&self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32Refined { .. } => "f32+refine",
        }
    }

    /// True for the `f32` working-precision mode.
    pub fn is_f32(&self) -> bool {
        matches!(self, Precision::F32Refined { .. })
    }
}

/// The execution target of a [`Backend`] — a *value*, so the same pipeline
/// retargets between host, one simulated GPU, a device pool, or a
/// spill-tolerant hybrid without changing call sites.
#[derive(Clone)]
#[non_exhaustive]
pub enum Target {
    /// Host execution, one rayon task per subdomain.
    Cpu {
        /// Upper bound on worker threads (`0` = all available).
        threads: usize,
    },
    /// One simulated GPU, driven by the §4.4 scheduler (cost-model LPT or
    /// round-robin per [`ScheduleOptions::policy`], temporary-arena
    /// admission, deterministic record-then-replay).
    Gpu {
        /// The device.
        device: Arc<Device>,
        /// Stream-scheduling options.
        schedule: ScheduleOptions,
    },
    /// A pool of simulated GPUs: a two-level plan partitions subdomains
    /// across devices (cost-aware LPT with per-device arena admissibility),
    /// then each device runs the §4.4 scheduler on its share. A subdomain
    /// that fits no device arena **panics** — use [`Target::Hybrid`] for
    /// the spill-tolerant variant.
    Cluster {
        /// The device pool (heterogeneous mixes allowed).
        pool: Arc<DevicePool>,
        /// Cluster scheduling options.
        opts: ClusterOptions,
    },
    /// The cluster plan with a host fail-over: subdomains whose temporaries
    /// fit no device arena keep their host-computed `F̃ᵢ` (the explicit-CPU
    /// formulation) instead of erroring, and the report's
    /// [`hybrid`](AssemblyReport::hybrid) block records the split.
    Hybrid {
        /// The device pool (a pool with no usable device sends everything
        /// to the host).
        pool: Arc<DevicePool>,
        /// Cluster scheduling options for the on-pool share.
        opts: ClusterOptions,
    },
    /// A simulated multi-node cluster: the hierarchical planner partitions
    /// subdomains across nodes by the §4.4 cost model **plus** priced
    /// inter-node lambda/gluing traffic over each node's
    /// [`Interconnect`](sc_gpu::Interconnect), then each node runs the
    /// two-level cluster driver on its own [`DevicePool`]. The report gains
    /// a per-node roll-up ([`AssemblyReport::nodes`]) with exchange-byte
    /// accounting.
    MultiNode {
        /// The simulated cluster.
        pool: Arc<NodePool>,
        /// Scheduling options shared by every node's device pool.
        opts: ClusterOptions,
    },
}

impl std::fmt::Debug for Target {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Target::Cpu { threads } => f.debug_struct("Cpu").field("threads", threads).finish(),
            Target::Gpu { device, schedule } => f
                .debug_struct("Gpu")
                .field("n_streams", &device.n_streams())
                .field("schedule", schedule)
                .finish(),
            Target::Cluster { pool, opts } => f
                .debug_struct("Cluster")
                .field("n_devices", &pool.n_devices())
                .field("opts", opts)
                .finish(),
            Target::Hybrid { pool, opts } => f
                .debug_struct("Hybrid")
                .field("n_devices", &pool.n_devices())
                .field("opts", opts)
                .finish(),
            Target::MultiNode { pool, opts } => f
                .debug_struct("MultiNode")
                .field("n_nodes", &pool.n_nodes())
                .field("n_devices", &pool.n_devices())
                .field("opts", opts)
                .finish(),
        }
    }
}

/// An execution target paired with a working precision: what an
/// [`AssemblySession`] (and the FETI solver builder) runs on.
///
/// Construct with the target shorthands and chain
/// [`precision`](Backend::precision) to opt into mixed precision:
///
/// ```
/// use sc_core::{Backend, Precision};
/// let b = Backend::cpu().precision(Precision::f32_refined());
/// assert!(b.precision.is_f32());
/// assert_eq!(Backend::cpu().precision, Precision::F64);
/// ```
#[derive(Clone, Debug)]
pub struct Backend {
    /// The execution target.
    pub target: Target,
    /// Working precision of the numerics (default [`Precision::F64`]).
    pub precision: Precision,
}

impl From<Target> for Backend {
    /// Wrap a target at the default `f64` precision.
    fn from(target: Target) -> Self {
        Backend {
            target,
            precision: Precision::F64,
        }
    }
}

impl Backend {
    /// Host execution on all available worker threads.
    pub fn cpu() -> Self {
        Target::Cpu { threads: 0 }.into()
    }

    /// Host execution capped at `threads` worker threads (`0` = uncapped).
    pub fn cpu_with_threads(threads: usize) -> Self {
        Target::Cpu { threads }.into()
    }

    /// One device under the default schedule (LPT + arena admission).
    pub fn gpu(device: Arc<Device>) -> Self {
        Target::Gpu {
            device,
            schedule: ScheduleOptions::default(),
        }
        .into()
    }

    /// One device under explicit scheduling options.
    pub fn gpu_with(device: Arc<Device>, schedule: ScheduleOptions) -> Self {
        Target::Gpu { device, schedule }.into()
    }

    /// A device pool under the default cluster options.
    pub fn cluster(pool: Arc<DevicePool>) -> Self {
        Target::Cluster {
            pool,
            opts: ClusterOptions::default(),
        }
        .into()
    }

    /// A device pool under explicit cluster options.
    pub fn cluster_with(pool: Arc<DevicePool>, opts: ClusterOptions) -> Self {
        Target::Cluster { pool, opts }.into()
    }

    /// A device pool with host fail-over for over-arena subdomains.
    pub fn hybrid(pool: Arc<DevicePool>) -> Self {
        Target::Hybrid {
            pool,
            opts: ClusterOptions::default(),
        }
        .into()
    }

    /// A spill-tolerant pool under explicit cluster options.
    pub fn hybrid_with(pool: Arc<DevicePool>, opts: ClusterOptions) -> Self {
        Target::Hybrid { pool, opts }.into()
    }

    /// A simulated multi-node cluster under the default cluster options.
    pub fn multi_node(pool: Arc<NodePool>) -> Self {
        Target::MultiNode {
            pool,
            opts: ClusterOptions::default(),
        }
        .into()
    }

    /// A simulated multi-node cluster under explicit cluster options.
    pub fn multi_node_with(pool: Arc<NodePool>, opts: ClusterOptions) -> Self {
        Target::MultiNode { pool, opts }.into()
    }

    /// Set the working precision (builder style).
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Stable lowercase name of the target (diagnostics, bench records).
    pub fn name(&self) -> &'static str {
        match &self.target {
            Target::Cpu { .. } => "cpu",
            Target::Gpu { .. } => "gpu",
            Target::Cluster { .. } => "cluster",
            Target::Hybrid { .. } => "hybrid",
            Target::MultiNode { .. } => "multinode",
        }
    }

    /// The device pool this backend schedules onto, if any. The single-GPU
    /// target exposes its device through [`Backend::device`] instead.
    pub fn pool(&self) -> Option<&Arc<DevicePool>> {
        match &self.target {
            Target::Cluster { pool, .. } | Target::Hybrid { pool, .. } => Some(pool),
            _ => None,
        }
    }

    /// The single device of the [`Target::Gpu`] target, if that is what
    /// this backend runs on.
    pub fn device(&self) -> Option<&Arc<Device>> {
        match &self.target {
            Target::Gpu { device, .. } => Some(device),
            _ => None,
        }
    }

    /// The node pool of the [`Target::MultiNode`] target, if that is what
    /// this backend runs on.
    pub fn node_pool(&self) -> Option<&Arc<NodePool>> {
        match &self.target {
            Target::MultiNode { pool, .. } => Some(pool),
            _ => None,
        }
    }
}

/// One batched-assembly configuration bound to an execution target: the
/// single entry point of the batched drivers.
///
/// A session is cheap to clone and reusable — `assemble` borrows it, so one
/// session can drive many batches (each call is an independent record →
/// plan → replay pass on the backend's timeline).
#[derive(Clone, Debug)]
pub struct AssemblySession {
    backend: Backend,
    cfg: ScConfig,
}

/// Result of [`AssemblySession::assemble`]: one dense `F̃ᵢ` per input
/// subdomain (batch order preserved) plus the unified report.
pub struct AssemblyResult {
    /// Assembled local dual operators, indexed like the input batch.
    pub f: Vec<Mat>,
    /// Unified diagnostics.
    pub report: AssemblyReport,
}

impl AssemblySession {
    /// Bind an execution target to an assembly configuration.
    pub fn new(backend: Backend, cfg: ScConfig) -> Self {
        AssemblySession { backend, cfg }
    }

    /// The execution target.
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// The assembly configuration.
    pub fn cfg(&self) -> &ScConfig {
        &self.cfg
    }

    /// Assemble every subdomain's `F̃ᵢ` on the session's backend.
    ///
    /// Accepts eager slices (`&[BatchItem]`, `&[(Csc, Csc)]`) and lazy
    /// sources ([`LazyBatch`](crate::source::LazyBatch)) through one bound. The
    /// numerics are bitwise identical across all backends; only the
    /// simulated timeline and the report's device sections differ. Under
    /// [`Precision::F32Refined`] the inputs are demoted to `f32`, the whole
    /// record → plan → replay pipeline runs in `f32` (halved value-byte
    /// terms in the transfer/arena cost model), and the assembled operators
    /// are promoted back to `f64` on return — the promotion is exact, so
    /// `f[i].cast::<f32>()` recovers the `f32`-assembled operator bitwise.
    pub fn assemble<I: IntoBatchSource>(&self, items: I) -> AssemblyResult {
        let src = items.into_batch_source();
        match self.backend.precision {
            Precision::F64 => {
                let (f, report) = dispatch(&self.backend.target, &self.cfg, &src);
                AssemblyResult { f, report }
            }
            p @ Precision::F32Refined { .. } => {
                let demoted: Vec<(CscOf<f32>, CscOf<f32>)> = (0..src.len())
                    .map(|i| (src.factor(i).cast::<f32>(), src.gluing(i).cast::<f32>()))
                    .collect();
                let (f, mut report) = dispatch(&self.backend.target, &self.cfg, &demoted);
                report.precision = p;
                if let Some(h) = report.hybrid.as_mut() {
                    h.precision = p;
                }
                AssemblyResult {
                    f: f.into_iter().map(|m| m.cast::<f64>()).collect(),
                    report,
                }
            }
        }
    }
}

/// Target dispatch of the batched drivers, generic over the working
/// precision. Every target fills the same [`AssemblyReport`] schema; the
/// report's `precision` field is stamped by the caller.
fn dispatch<S: Scalar, Src: BatchSource<S>>(
    target: &Target,
    cfg: &ScConfig,
    src: &Src,
) -> (Vec<MatOf<S>>, AssemblyReport) {
    match target {
        Target::Cpu { threads } => {
            let res = if *threads > 0 {
                rayon::with_max_threads(*threads, || batch_cpu(src, cfg))
            } else {
                batch_cpu(src, cfg)
            };
            (res.f, AssemblyReport::from_batch(res.report, None))
        }
        Target::Gpu { device, schedule } => {
            let busy0 = device.busy_seconds();
            let res = batch_scheduled(src, cfg, device, schedule);
            let busy = device.busy_seconds() - busy0;
            let cap = res.report.device_seconds * device.n_streams().max(1) as f64; // sc-analyze: allow(precision-discipline)
            let utilization = if cap > 0.0 { busy / cap } else { 0.0 };
            (
                res.f,
                AssemblyReport::from_batch(res.report, Some(utilization)),
            )
        }
        Target::Cluster { pool, opts } => {
            let out = batch_cluster_impl(src, cfg, pool, opts, false);
            (out.f, AssemblyReport::from_cluster(&out.report))
        }
        Target::Hybrid { pool, opts } => {
            let usable = pool.devices().iter().any(|d| d.n_streams() > 0);
            if !usable {
                // nothing can run on the pool: everything fails over to
                // the host, and the report says so
                let n = src.len();
                let res = batch_cpu(src, cfg);
                let mut report = AssemblyReport::from_batch(res.report, None);
                report.hybrid = Some(HybridSummary {
                    plan: None,
                    formulation: vec![Formulation::ExplicitCpu; n],
                    spilled: (0..n).collect(),
                    predicted_assembly_seconds: 0.0,
                    realized_gpu_seconds: 0.0,
                    realized_cpu_seconds: report.cpu_seconds(),
                    arena_high_water: 0,
                    precision: Precision::F64,
                });
                return (res.f, report);
            }
            let out = batch_cluster_impl(src, cfg, pool, opts, true);
            let mut report = AssemblyReport::from_cluster(&out.report);
            // merge the host fail-over share into the roll-up
            report.subdomains.extend(out.spill_timings.iter().copied());
            report.subdomains.sort_by_key(|t| t.index);
            let realized_cpu: f64 = out.spill_timings.iter().map(|t| t.host_seconds).sum();
            let mut formulation = vec![Formulation::ExplicitGpu; out.f.len()];
            for &g in &out.spilled {
                formulation[g] = Formulation::ExplicitCpu;
            }
            report.hybrid = Some(HybridSummary {
                plan: None,
                formulation,
                spilled: out.spilled,
                predicted_assembly_seconds: 0.0,
                realized_gpu_seconds: report.makespan,
                realized_cpu_seconds: realized_cpu,
                arena_high_water: report.temp_high_water(),
                precision: Precision::F64,
            });
            (out.f, report)
        }
        Target::MultiNode { pool, opts } => batch_multi_node(src, cfg, pool, opts),
    }
}

/// A view of a subset of another batch source: the per-node shares of the
/// multi-node driver, in node-placement order.
struct SubsetSource<'a, Src> {
    src: &'a Src,
    idx: &'a [usize],
}

impl<S: Scalar, Src: BatchSource<S>> BatchSource<S> for SubsetSource<'_, Src> {
    fn len(&self) -> usize {
        self.idx.len()
    }

    fn factor(&self, i: usize) -> Cow<'_, CscOf<S>> {
        self.src.factor(self.idx[i])
    }

    fn gluing(&self, i: usize) -> &CscOf<S> {
        self.src.gluing(self.idx[i])
    }
}

/// The multi-node driver: partition subdomains across nodes with the
/// hierarchical planner (analytic §4.4 pricing plus the interconnect cost
/// of each subdomain's boundary bytes), run the two-level cluster driver on
/// every node's own pool, then merge the per-node reports into one flat
/// [`AssemblyReport`] with global device numbering and a per-node roll-up.
///
/// Each node's boundary traffic is charged as **one aggregated exchange**
/// on its timeline after its replay (the assembly-phase lambda/gluing rows
/// leave the node once), recorded as a [`TraceEvent::Exchange`] on the
/// node's first reporting device; a single-node pool exchanges nothing and
/// reproduces the cluster driver's timings exactly.
fn batch_multi_node<S: Scalar, Src: BatchSource<S>>(
    src: &Src,
    cfg: &ScConfig,
    pool: &Arc<NodePool>,
    opts: &ClusterOptions,
) -> (Vec<MatOf<S>>, AssemblyReport) {
    if let Some(ready) = opts.ready_at.as_ref() {
        assert_eq!(
            ready.len(),
            src.len(),
            "ClusterOptions::ready_at must carry one readiness time per \
             batch item ({} given, {} items)",
            ready.len(),
            src.len()
        );
    }
    let t0 = Instant::now();
    if !src.is_empty() {
        assert!(
            !pool.is_empty(),
            // documented batch-API contract: planning failure aborts. sc-analyze: allow(panic-surface)
            "multi-node partition failed: {}",
            ClusterPlanError::NoDevices
        );
    }

    // node-level partition: analytic §4.4 estimates priced under the first
    // device's spec, re-priced per placement by the topology (each node's
    // own device specs plus its interconnect for the boundary bytes)
    let ref_spec = if pool.is_empty() {
        sc_gpu::DeviceSpec::host()
    } else {
        pool.node(0).pool.device(0).spec().clone()
    };
    let costs: Vec<CostEstimate> = (0..src.len())
        .map(|i| {
            let l = src.factor(i);
            let bt = src.gluing(i);
            let params = cfg.resolve(true, &l, bt);
            estimate_cost_of::<S>(&ref_spec, &l, bt, &params, i)
        })
        .collect();
    let topo = Topology::of_cluster(pool, opts.policy);
    let plan = plan_topology(&costs, &topo)
        // documented batch-API contract: planning failure aborts. sc-analyze: allow(panic-surface)
        .unwrap_or_else(|e| panic!("multi-node partition failed: {e}"));
    if !plan.spilled.is_empty() {
        // documented batch-API contract: an unplaceable subdomain aborts
        // (use Target::Hybrid inside a node for spill tolerance).
        // sc-analyze: allow(panic-surface)
        panic!(
            "multi-node partition failed: subdomains {:?} fit no node's \
             device arenas",
            plan.spilled
        );
    }

    let mut f_slots: Vec<Option<MatOf<S>>> = (0..src.len()).map(|_| None).collect();
    let mut report = AssemblyReport::default();
    for (d, node) in pool.nodes().iter().enumerate() {
        let idx = &plan.per_child[d];
        let sub = SubsetSource { src, idx };
        let mut sub_opts = ClusterOptions::default().with_policy(opts.policy);
        if let Some(r) = opts.ready_at.as_ref() {
            sub_opts = sub_opts.with_ready_at(idx.iter().map(|&g| r[g]).collect());
        }
        let out = batch_cluster_impl(&sub, cfg, &node.pool, &sub_opts, false);
        for (local_f, &g) in out.f.into_iter().zip(idx.iter()) {
            f_slots[g] = Some(local_f);
        }
        let mut nrep = AssemblyReport::from_cluster(&out.report);
        nrep.remap_indices(idx);

        // the node's boundary bytes leave over its link once, after its
        // replay: one aggregated exchange, overlapping nothing it feeds
        let exchange_bytes: f64 = if pool.n_nodes() > 1 {
            idx.iter().map(|&g| costs[g].exchange_bytes).sum()
        } else {
            0.0
        };
        let exchange_seconds = if exchange_bytes > 0.0 {
            node.link.seconds(exchange_bytes)
        } else {
            0.0
        };

        // flatten into global device numbering
        let base = report.devices.len();
        let mut node_devices = Vec::with_capacity(nrep.devices.len());
        for mut dev in nrep.devices {
            dev.device += base;
            if exchange_seconds > 0.0 && dev.device == base {
                if let Some(trace) = dev.trace.as_mut() {
                    let at = node.pool.synchronize_all();
                    trace.events.push(TraceEvent::Exchange {
                        label: "lambda-exchange",
                        peer: (d + 1) % pool.n_nodes(),
                        bytes: exchange_bytes as usize, // sc-analyze: allow(precision-discipline)
                        span: SimSpan {
                            start: at,
                            end: at + exchange_seconds,
                        },
                        writes: Vec::new(),
                    });
                }
            }
            node_devices.push(dev.device);
            report.devices.push(dev);
        }
        for mut t in nrep.subdomains {
            t.device = t.device.map(|dd| dd + base);
            t.node = Some(d);
            report.subdomains.push(t);
        }
        report.nodes.push(NodeReport {
            node: d,
            devices: node_devices,
            subdomains: idx.clone(),
            makespan: nrep.makespan + exchange_seconds,
            exchange_bytes,
            exchange_seconds,
        });
        report.cache_hits += nrep.cache_hits;
        report.cache_misses += nrep.cache_misses;
    }
    report.subdomains.sort_by_key(|t| t.index);
    report.makespan = report.nodes.iter().map(|n| n.makespan).fold(0.0, f64::max);
    report.total_seconds = t0.elapsed().as_secs_f64();
    let f = f_slots
        .into_iter()
        .map(|m| m.expect("every subdomain assembled on exactly one node"))
        .collect();
    (f, report)
}

/// One stream's executed spans inside a [`DeviceReport`], chronological.
#[derive(Clone, Debug)]
pub struct StreamLane {
    /// Stream index, device-local.
    pub stream: usize,
    /// Executed spans on that stream, in execution order.
    pub spans: Vec<ScheduledSpan>,
}

/// Per-device section of an [`AssemblyReport`]: the device's share, its
/// executed schedule, and its roll-up numbers.
#[derive(Clone, Debug, Default)]
pub struct DeviceReport {
    /// Pool index of the device.
    pub device: usize,
    /// Subdomain indices assigned to this device, in execution order.
    pub subdomains: Vec<usize>,
    /// Executed schedule (one entry per subdomain, execution order);
    /// empty on drivers without a recorded schedule.
    pub schedule: Vec<ScheduledSpan>,
    /// Simulated makespan of this device's share.
    pub makespan: f64,
    /// Busy kernel-seconds over `makespan × n_streams` (0 when idle).
    pub utilization: f64,
    /// Peak simultaneous temporary-arena reservation, bytes.
    pub temp_high_water: usize,
    /// Hazard-audit trace of this device's executed schedule (see
    /// [`sc_gpu::trace`]); `None` on drivers without a recorded replay.
    /// Validate with `sc_analyze::trace::validate`.
    pub trace: Option<sc_gpu::Trace>,
}

impl DeviceReport {
    /// Group the executed schedule into per-stream lanes (chronological
    /// within each lane; lanes ordered by stream index).
    pub fn stream_lanes(&self) -> Vec<StreamLane> {
        let mut lanes: Vec<StreamLane> = Vec::new();
        for e in &self.schedule {
            match lanes.iter_mut().find(|l| l.stream == e.stream) {
                Some(lane) => lane.spans.push(*e),
                None => lanes.push(StreamLane {
                    stream: e.stream,
                    spans: vec![*e],
                }),
            }
        }
        lanes.sort_by_key(|l| l.stream);
        lanes
    }
}

/// Per-node section of an [`AssemblyReport`]: which devices and subdomains
/// the node owned, plus the cost of shipping its boundary rows to the rest
/// of the cluster over its interconnect. Empty unless the batch ran on a
/// [`Target::MultiNode`] backend.
#[derive(Clone, Debug, Default)]
pub struct NodeReport {
    /// Pool index of the node.
    pub node: usize,
    /// Global (flattened) device indices owned by this node, ascending.
    pub devices: Vec<usize>,
    /// Subdomain indices assigned to this node, in placement order.
    pub subdomains: Vec<usize>,
    /// Simulated makespan of this node's share **including** the trailing
    /// boundary exchange.
    pub makespan: f64,
    /// Boundary (lambda/gluing) bytes this node ships to its peers.
    pub exchange_bytes: f64,
    /// Simulated seconds of that exchange under the node's interconnect
    /// (0 on a single-node pool: nothing leaves the node).
    pub exchange_seconds: f64,
}

/// The hybrid section of an [`AssemblyReport`]: which subdomains ran where
/// and why, with predicted-vs-realized cost when a decision layer planned
/// the split.
#[derive(Clone, Debug)]
pub struct HybridSummary {
    /// The cost-model plan when one ran ([`plan_hybrid`](crate::plan_hybrid)
    /// in the FETI hybrid mode); `None` for the pure arena-spill split of
    /// [`Target::Hybrid`].
    pub plan: Option<HybridPlan>,
    /// Realized formulation of every subdomain, batch order.
    pub formulation: Vec<Formulation>,
    /// Subdomain indices that fit no device arena, ascending.
    pub spilled: Vec<usize>,
    /// Σ predicted assembly seconds over the explicit decisions (0 when no
    /// decision layer ran).
    pub predicted_assembly_seconds: f64,
    /// Realized simulated makespan of the on-device share.
    pub realized_gpu_seconds: f64,
    /// Realized host wall seconds of the host share.
    pub realized_cpu_seconds: f64,
    /// Largest per-device temporary-arena high water, bytes.
    pub arena_high_water: usize,
    /// Working precision the split was planned and realized under.
    pub precision: Precision,
}

impl HybridSummary {
    /// Number of subdomains realized with the given formulation.
    pub fn count_of(&self, f: Formulation) -> usize {
        self.formulation.iter().filter(|&&x| x == f).count()
    }
}

/// The one report type of the unified surface: per-subdomain timings, per
/// device the per-stream execution timeline, and — when the backend split
/// the batch — the hybrid decisions. Every execution target fills the same
/// schema; sections that do not apply stay empty (`devices` on CPU runs,
/// `hybrid` on single-target runs).
#[derive(Clone, Debug, Default)]
pub struct AssemblyReport {
    /// Per-subdomain timings, batch order.
    pub subdomains: Vec<SubdomainTiming>,
    /// Per-device roll-ups (empty on pure-CPU runs; idle pool devices keep
    /// an entry with an empty share).
    pub devices: Vec<DeviceReport>,
    /// Per-node roll-ups over `devices` (empty unless the batch ran on a
    /// [`Target::MultiNode`] backend).
    pub nodes: Vec<NodeReport>,
    /// Hybrid split decisions (`None` unless the backend or a decision
    /// layer split the batch).
    pub hybrid: Option<HybridSummary>,
    /// Host wall time of the whole batched assembly.
    pub total_seconds: f64,
    /// Simulated device makespan (largest per-device makespan; 0 on CPU).
    pub makespan: f64,
    /// Block-cut resolutions served from the shared cache.
    pub cache_hits: usize,
    /// Block-cut resolutions computed fresh.
    pub cache_misses: usize,
    /// Working precision the batch was assembled under.
    pub precision: Precision,
}

impl AssemblyReport {
    /// Sum of per-subdomain **host** task times (the sequential-equivalent
    /// host cost).
    pub fn cpu_seconds(&self) -> f64 {
        self.subdomains.iter().map(|t| t.host_seconds).sum()
    }

    /// Achieved host-side parallel speedup `cpu_seconds / total_seconds`.
    pub fn speedup(&self) -> f64 {
        if self.total_seconds > 0.0 {
            self.cpu_seconds() / self.total_seconds
        } else {
            1.0
        }
    }

    /// Largest per-device temporary-arena high water, bytes.
    pub fn temp_high_water(&self) -> usize {
        self.devices
            .iter()
            .map(|d| d.temp_high_water)
            .max()
            .unwrap_or(0)
    }

    /// Pool device of subdomain `i` (`None` when it ran on the host).
    pub fn device_of(&self, i: usize) -> Option<usize> {
        self.subdomains.get(i).and_then(|t| t.device)
    }

    /// Build from a single-target [`BatchReport`]; `utilization` is
    /// `Some` when the run used a device (which becomes device 0).
    pub fn from_batch(rep: BatchReport, utilization: Option<f64>) -> Self {
        let devices = match utilization {
            Some(utilization) if rep.timings.iter().any(|t| t.stream.is_some()) => {
                vec![DeviceReport {
                    device: 0,
                    subdomains: if rep.schedule.is_empty() {
                        rep.timings.iter().map(|t| t.index).collect()
                    } else {
                        rep.schedule.iter().map(|e| e.index).collect()
                    },
                    schedule: rep.schedule.clone(),
                    makespan: rep.device_seconds,
                    utilization,
                    temp_high_water: rep.temp_high_water,
                    trace: rep.trace.clone(),
                }]
            }
            _ => Vec::new(),
        };
        AssemblyReport {
            subdomains: rep.timings,
            devices,
            nodes: Vec::new(),
            hybrid: None,
            total_seconds: rep.total_seconds,
            makespan: rep.device_seconds,
            cache_hits: rep.cache_hits,
            cache_misses: rep.cache_misses,
            precision: Precision::F64,
        }
    }

    /// Build from a cluster roll-up (subdomain indices already batch-global).
    pub fn from_cluster(rep: &ClusterReport) -> Self {
        let devices: Vec<DeviceReport> = rep
            .per_device
            .iter()
            .enumerate()
            .map(|(d, r)| DeviceReport {
                device: d,
                subdomains: rep.partition[d].clone(),
                schedule: r.schedule.clone(),
                makespan: r.device_seconds,
                utilization: rep.utilization[d],
                temp_high_water: r.temp_high_water,
                trace: r.trace.clone(),
            })
            .collect();
        let mut subdomains: Vec<SubdomainTiming> = rep
            .per_device
            .iter()
            .flat_map(|r| r.timings.iter().copied())
            .collect();
        subdomains.sort_by_key(|t| t.index);
        AssemblyReport {
            subdomains,
            devices,
            nodes: Vec::new(),
            hybrid: None,
            total_seconds: rep.total_seconds,
            makespan: rep.makespan,
            cache_hits: rep.per_device.iter().map(|r| r.cache_hits).sum(),
            cache_misses: rep.per_device.iter().map(|r| r.cache_misses).sum(),
            precision: Precision::F64,
        }
    }

    /// Flatten into the legacy single-target [`BatchReport`] shape
    /// (schedules concatenated in device order — stream ids stay
    /// device-local).
    pub fn to_batch_report(&self) -> BatchReport {
        BatchReport {
            timings: self.subdomains.clone(),
            total_seconds: self.total_seconds,
            device_seconds: self.makespan,
            schedule: self
                .devices
                .iter()
                .flat_map(|d| d.schedule.iter().copied())
                .collect(),
            temp_high_water: self.temp_high_water(),
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            trace: match self.devices.as_slice() {
                // device-local slot ids and streams do not merge across
                // devices; the flat shape keeps a trace only when it is
                // unambiguous
                [d] => d.trace.clone(),
                _ => None,
            },
        }
    }

    /// Reconstruct the legacy per-device [`ClusterReport`] (`None` when the
    /// run touched no device). Subdomains outside every device share (host
    /// fail-overs) hold `usize::MAX` in `device_of`, like the hybrid mode
    /// always reported.
    pub fn to_cluster_report(&self) -> Option<ClusterReport> {
        if self.devices.is_empty() {
            return None;
        }
        let max_index = self.subdomains.iter().map(|t| t.index).max().unwrap_or(0);
        let mut device_of = vec![usize::MAX; self.subdomains.len().max(max_index + 1)];
        for t in &self.subdomains {
            if let Some(d) = t.device {
                device_of[t.index] = d;
            }
        }
        let per_device: Vec<BatchReport> = self
            .devices
            .iter()
            .map(|d| BatchReport {
                timings: self
                    .subdomains
                    .iter()
                    .filter(|t| t.device == Some(d.device))
                    .copied()
                    .collect(),
                total_seconds: self.total_seconds,
                device_seconds: d.makespan,
                schedule: d.schedule.clone(),
                temp_high_water: d.temp_high_water,
                // the block-cut cache is shared across the whole run; its
                // totals live on the first device's report so that summing
                // per-device counters stays correct (legacy convention)
                cache_hits: if d.device == 0 { self.cache_hits } else { 0 },
                cache_misses: if d.device == 0 { self.cache_misses } else { 0 },
                trace: d.trace.clone(),
            })
            .collect();
        Some(ClusterReport {
            partition: self.devices.iter().map(|d| d.subdomains.clone()).collect(),
            utilization: self.devices.iter().map(|d| d.utilization).collect(),
            makespan: self.devices.iter().map(|d| d.makespan).fold(0.0, f64::max),
            per_device,
            device_of,
            total_seconds: self.total_seconds,
        })
    }

    /// Remap every subdomain index through `map` (share-local → global) and
    /// re-sort the timing list; used when a share of a bigger problem was
    /// assembled separately — **before** any hybrid section is attached.
    ///
    /// # Panics
    ///
    /// When `self.hybrid` is `Some`: its `formulation` vector is indexed by
    /// batch position and cannot be re-expanded from `map` alone, so a
    /// remapped hybrid section would be internally inconsistent. Merge the
    /// shares first, then attach the global hybrid summary.
    pub fn remap_indices(&mut self, map: &[usize]) {
        assert!(
            self.hybrid.is_none(),
            "remap_indices applies to share reports only; attach the hybrid \
             section after remapping"
        );
        for t in &mut self.subdomains {
            t.index = map[t.index];
        }
        self.subdomains.sort_by_key(|t| t.index);
        for d in &mut self.devices {
            for g in &mut d.subdomains {
                *g = map[*g];
            }
            for e in &mut d.schedule {
                e.index = map[e.index];
            }
        }
        for n in &mut self.nodes {
            for g in &mut n.subdomains {
                *g = map[*g];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchItem;
    use crate::source::LazyBatch;
    use sc_factor::{CholOptions, SparseCholesky};
    use sc_gpu::DeviceSpec;
    use sc_sparse::{Coo, Csc};

    fn workload(nsub: usize, nx: usize, m: usize) -> Vec<(Csc, Csc)> {
        (0..nsub)
            .map(|s| {
                let n = nx * nx;
                let idx = |x: usize, y: usize| y * nx + x;
                let mut c = Coo::new(n, n);
                for y in 0..nx {
                    for x in 0..nx {
                        let v = idx(x, y);
                        c.push(v, v, 4.05 + 0.01 * s as f64);
                        if x > 0 {
                            c.push(v, idx(x - 1, y), -1.0);
                        }
                        if x + 1 < nx {
                            c.push(v, idx(x + 1, y), -1.0);
                        }
                        if y > 0 {
                            c.push(v, idx(x, y - 1), -1.0);
                        }
                        if y + 1 < nx {
                            c.push(v, idx(x, y + 1), -1.0);
                        }
                    }
                }
                let k = c.to_csc();
                let chol = SparseCholesky::factorize(&k, CholOptions::default()).unwrap();
                let mut b = Coo::new(n, m);
                for j in 0..m {
                    b.push(
                        (j * 53 + s * 17) % n,
                        j,
                        if j.is_multiple_of(2) { 1.0 } else { -1.0 },
                    );
                }
                (chol.factor_csc(), b.to_csc().permute_rows(chol.perm()))
            })
            .collect()
    }

    #[test]
    fn every_backend_is_bitwise_identical_through_one_entry_point() {
        let data = workload(6, 6, 8);
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let cfg = ScConfig::optimized(true, false);
        let cpu = AssemblySession::new(Backend::cpu(), cfg).assemble(&items);
        assert!(cpu.report.devices.is_empty());
        assert_eq!(cpu.report.makespan, 0.0);

        let dev = Device::new(DeviceSpec::a100(), 3);
        let gpu = AssemblySession::new(Backend::gpu(Arc::clone(&dev)), cfg).assemble(&items);
        assert_eq!(gpu.report.devices.len(), 1);
        assert!(gpu.report.makespan > 0.0);
        assert!(gpu.report.devices[0].utilization > 0.0);
        assert!(!gpu.report.devices[0].stream_lanes().is_empty());

        let pool = DevicePool::uniform(DeviceSpec::a100(), 2, 2);
        let cl = AssemblySession::new(Backend::cluster(Arc::clone(&pool)), cfg).assemble(&items);
        assert_eq!(cl.report.devices.len(), 2);

        let hy = AssemblySession::new(Backend::hybrid(pool), cfg).assemble(&items);
        let hybrid = hy.report.hybrid.as_ref().expect("hybrid backend reports");
        assert!(hybrid.spilled.is_empty(), "everything fits the A100 arena");

        for i in 0..items.len() {
            assert_eq!(cpu.f[i], gpu.f[i], "gpu deviates at {i}");
            assert_eq!(cpu.f[i], cl.f[i], "cluster deviates at {i}");
            assert_eq!(cpu.f[i], hy.f[i], "hybrid deviates at {i}");
        }
    }

    #[test]
    fn f32_precision_assembles_close_to_f64_and_stamps_reports() {
        let data = workload(5, 6, 8);
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let cfg = ScConfig::optimized(true, false);
        let base = AssemblySession::new(Backend::cpu(), cfg).assemble(&items);
        assert_eq!(base.report.precision, Precision::F64);

        let f32r = AssemblySession::new(Backend::cpu().precision(Precision::f32_refined()), cfg)
            .assemble(&items);
        assert!(f32r.report.precision.is_f32());
        for i in 0..items.len() {
            let err = sc_dense::max_abs_diff(base.f[i].as_ref(), f32r.f[i].as_ref());
            assert!(err > 0.0, "f32 assembly must actually run in f32 at {i}");
            assert!(err < 1e-3, "f32 assembly drifted {err} at {i}");
        }

        // the demoted pipeline is still deterministic across targets, and
        // the halved value bytes shrink the device arena footprint
        let dev = Device::new(DeviceSpec::a100(), 2);
        let g64 = AssemblySession::new(Backend::gpu(Arc::clone(&dev)), cfg).assemble(&items);
        let g32 = AssemblySession::new(
            Backend::gpu(Arc::clone(&dev)).precision(Precision::f32_refined()),
            cfg,
        )
        .assemble(&items);
        for i in 0..items.len() {
            assert_eq!(g32.f[i], f32r.f[i], "gpu f32 deviates from cpu f32 at {i}");
        }
        assert!(
            g32.report.devices[0].temp_high_water < g64.report.devices[0].temp_high_water,
            "f32 arena high water {} must undercut f64 {}",
            g32.report.devices[0].temp_high_water,
            g64.report.devices[0].temp_high_water
        );
        assert_eq!(
            g32.report.devices[0].trace.as_ref().map(|t| t.elem_bytes),
            Some(4),
            "replay traces must carry the f32 element width"
        );
    }

    #[test]
    fn cpu_thread_cap_is_honoured_and_bitwise_neutral() {
        let data = workload(5, 5, 6);
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let cfg = ScConfig::optimized(false, false);
        let all = AssemblySession::new(Backend::cpu(), cfg).assemble(&items);
        let one = AssemblySession::new(Backend::cpu_with_threads(1), cfg).assemble(&items);
        for i in 0..items.len() {
            assert_eq!(all.f[i], one.f[i], "thread cap must not change numerics");
        }
    }

    #[test]
    fn lazy_sources_match_eager_slices() {
        let data = workload(4, 6, 7);
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let cfg = ScConfig::Auto;
        let session = AssemblySession::new(Backend::cpu(), cfg);
        let eager = session.assemble(&items);
        let lazy = session.assemble(LazyBatch::new(
            &data,
            |_, (l, _): &(Csc, Csc)| std::borrow::Cow::Owned(l.clone()),
            |(_, bt)| bt,
        ));
        let pairs = session.assemble(data.as_slice());
        for i in 0..items.len() {
            assert_eq!(eager.f[i], lazy.f[i], "lazy deviates at {i}");
            assert_eq!(eager.f[i], pairs.f[i], "(Csc, Csc) source deviates at {i}");
        }
    }

    #[test]
    fn hybrid_backend_spills_over_arena_subdomains_to_the_host() {
        let data = workload(6, 8, 12);
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let cfg = ScConfig::optimized(true, false);
        // size the arena between the smallest and largest footprint: some
        // subdomains must spill (all have the same shape here, so instead
        // shrink the arena below everything → everything spills)
        let spec = DeviceSpec {
            memory_bytes: 64,
            ..DeviceSpec::a100()
        };
        let pool = DevicePool::uniform(spec, 1, 2);
        let hy = AssemblySession::new(Backend::hybrid(pool), cfg).assemble(&items);
        let hybrid = hy.report.hybrid.as_ref().unwrap();
        assert_eq!(hybrid.spilled.len(), items.len(), "everything must spill");
        assert_eq!(hybrid.count_of(Formulation::ExplicitCpu), items.len());
        assert!(hybrid.realized_cpu_seconds > 0.0);
        // numerics still match the CPU reference bitwise
        let cpu = AssemblySession::new(Backend::cpu(), cfg).assemble(&items);
        for i in 0..items.len() {
            assert_eq!(cpu.f[i], hy.f[i]);
        }
        // a pool with no usable device degrades the same way
        let none = DevicePool::from_devices(vec![Device::new(DeviceSpec::a100(), 0)]);
        let hy0 = AssemblySession::new(Backend::hybrid(none), ScConfig::optimized(true, false))
            .assemble(&items);
        assert_eq!(
            hy0.report.hybrid.as_ref().unwrap().spilled.len(),
            items.len()
        );
        for i in 0..items.len() {
            assert_eq!(cpu.f[i], hy0.f[i]);
        }
    }

    #[test]
    fn legacy_report_round_trips() {
        let data = workload(6, 6, 8);
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let cfg = ScConfig::optimized(true, false);
        let pool = DevicePool::uniform(DeviceSpec::a100(), 2, 2);
        let res = AssemblySession::new(Backend::cluster(pool), cfg).assemble(&items);
        let batch = res.report.to_batch_report();
        assert_eq!(batch.timings.len(), items.len());
        assert_eq!(batch.device_seconds, res.report.makespan);
        assert_eq!(batch.schedule.len(), items.len());
        let cluster = res.report.to_cluster_report().expect("devices present");
        assert_eq!(cluster.n_devices(), 2);
        assert_eq!(cluster.makespan, res.report.makespan);
        let mut placed: Vec<usize> = cluster.partition.concat();
        placed.sort_unstable();
        assert_eq!(placed, (0..items.len()).collect::<Vec<_>>());
        for (i, &d) in cluster.device_of.iter().enumerate() {
            assert!(cluster.partition[d].contains(&i));
        }
    }
}
