//! Block-partition parameters and helpers (paper §4.1, Table 1).
//!
//! The splitting kernels partition a matrix dimension into uniform blocks,
//! either by **fixing the block size** (count grows with the problem) or by
//! **fixing the block count** (size grows with the problem). The paper finds
//! fixed block *size* transfers across subdomain sizes (Figure 5), which is
//! why Table 1 reports mostly `S` entries.

/// Block partitioning parameter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BlockParam {
    /// Fixed block size (`S` rows/columns per block), uniform.
    Size(usize),
    /// Fixed number of blocks (`C` blocks over the whole dimension), uniform.
    Count(usize),
    /// Fixed number of blocks with **non-uniform** boundaries chosen so each
    /// block carries approximately the same number of FLOPs given the
    /// stepped pattern (the paper's footnote 3: "One can also split the
    /// matrices in a non-uniform way to minimize the theoretical number of
    /// FLOPs for a given number of blocks. It was tested without observable
    /// differences."). Kept for the ablation benches.
    Balanced(usize),
}

impl BlockParam {
    /// Resolve to a concrete uniform block size for a dimension of length
    /// `n` (`Balanced` falls back to uniform here; use [`resolve_block_cuts`]
    /// for the pattern-aware boundaries).
    pub fn block_size(self, n: usize) -> usize {
        match self {
            BlockParam::Size(s) => s.max(1),
            BlockParam::Count(c) | BlockParam::Balanced(c) => n.div_ceil(c.max(1)).max(1),
        }
    }
}

/// Resolve a block parameter and return the block boundaries covering
/// `0..n`: `[0, b, 2b, ..., n]` (uniform variants; `Balanced` degrades to
/// uniform without pattern information).
pub fn resolve_block(param: BlockParam, n: usize) -> Vec<usize> {
    let bs = param.block_size(n);
    let mut cuts = Vec::with_capacity(n / bs + 2);
    let mut p = 0;
    while p < n {
        cuts.push(p);
        p += bs;
    }
    cuts.push(n);
    cuts
}

/// Pattern-aware block resolution for **row-dimension** splits (TRSM factor
/// splitting, SYRK input splitting): for [`BlockParam::Balanced`] the cuts
/// are placed so every block covers roughly the same amount of *work*, where
/// the work of row `i` is the number of stepped columns active at `i`
/// (`pivots` must be sorted ascending). Uniform variants ignore `pivots`.
pub fn resolve_block_cuts(param: BlockParam, n: usize, pivots: &[usize]) -> Vec<usize> {
    let BlockParam::Balanced(count) = param else {
        return resolve_block(param, n);
    };
    // prefix sums of per-row active widths
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0usize);
    let mut j = 0usize;
    for i in 0..n {
        while j < pivots.len() && pivots[j] <= i {
            j += 1;
        }
        prefix.push(prefix[i] + j);
    }
    cuts_from_prefix(&prefix, count)
}

/// Pattern-aware block resolution for **column-dimension** splits (TRSM RHS
/// splitting, SYRK output splitting): the work of stepped column `j` is its
/// height below the pivot, `n − pivots[j]`.
pub fn resolve_block_cuts_cols(
    param: BlockParam,
    m: usize,
    pivots: &[usize],
    n: usize,
) -> Vec<usize> {
    let BlockParam::Balanced(count) = param else {
        return resolve_block(param, m);
    };
    let mut prefix = Vec::with_capacity(m + 1);
    prefix.push(0usize);
    for j in 0..m {
        prefix.push(prefix[j] + n.saturating_sub(pivots[j]));
    }
    cuts_from_prefix(&prefix, count)
}

/// Place `count` cuts at the equal-work quantiles of a prefix-sum table.
fn cuts_from_prefix(prefix: &[usize], count: usize) -> Vec<usize> {
    let n = prefix.len() - 1;
    let count = count.max(1);
    let total = *prefix.last().expect("prefix-sum table has n + 1 entries");
    let mut cuts = vec![0usize];
    for k in 1..count {
        let target = total * k / count;
        let mut cut = prefix.partition_point(|&p| p < target).min(n);
        // enforce strictly increasing cuts
        if cut <= *cuts.last().expect("cuts seeded with a leading 0 above") {
            cut = (*cuts.last().expect("cuts seeded with a leading 0 above") + 1).min(n);
        }
        if cut >= n {
            break;
        }
        cuts.push(cut);
    }
    if n > 0 || cuts.last() != Some(&0) {
        cuts.push(n);
    }
    cuts
}

/// Thread-safe memo table for [`BlockParam`] cut resolution, shared across
/// the subdomains of one batched assembly.
///
/// In a FETI decomposition most subdomains have identical (or near-identical)
/// dimensions, so the same `(param, n)` resolution repeats once per
/// subdomain. Uniform variants ([`BlockParam::Size`]/[`BlockParam::Count`])
/// depend only on `(param, n)` and are keyed pattern-free, so
/// differently-glued subdomains of equal size share entries;
/// [`BlockParam::Balanced`] cuts also depend on the stepped pivots, which
/// are carried in the key verbatim — a cache hit therefore always returns
/// exactly the cuts an uncached resolution would compute, preserving the
/// batch driver's bitwise-equality guarantee.
#[derive(Default)]
pub struct BlockCutsCache {
    rows: std::sync::Mutex<std::collections::HashMap<CutsKey, std::sync::Arc<Vec<usize>>>>,
    cols: std::sync::Mutex<std::collections::HashMap<CutsKey, std::sync::Arc<Vec<usize>>>>,
    hits: std::sync::atomic::AtomicUsize,
    misses: std::sync::atomic::AtomicUsize,
}

type CutsKey = (BlockParam, usize, usize, Vec<usize>);

fn pivots_key(param: BlockParam, pivots: &[usize]) -> Vec<usize> {
    // Only Balanced cuts depend on the pattern; uniform keys stay empty (no
    // allocation on the default-config path). The O(m) pivot copy per
    // Balanced lookup is noise next to the O((n+m)·m) kernel work behind it,
    // and Balanced is an ablation config.
    if matches!(param, BlockParam::Balanced(_)) {
        pivots.to_vec()
    } else {
        Vec::new()
    }
}

/// Row-dimension cuts, via the shared memo table when one is provided
/// (cache-optional form of [`resolve_block_cuts`], used by the splitting
/// kernels).
pub fn row_cuts(
    cache: Option<&BlockCutsCache>,
    param: BlockParam,
    n: usize,
    pivots: &[usize],
) -> std::sync::Arc<Vec<usize>> {
    match cache {
        Some(c) => c.rows(param, n, pivots),
        None => std::sync::Arc::new(resolve_block_cuts(param, n, pivots)),
    }
}

/// Column-dimension cuts, via the shared memo table when one is provided
/// (cache-optional form of [`resolve_block_cuts_cols`]).
pub fn col_cuts(
    cache: Option<&BlockCutsCache>,
    param: BlockParam,
    m: usize,
    pivots: &[usize],
    n: usize,
) -> std::sync::Arc<Vec<usize>> {
    match cache {
        Some(c) => c.cols(param, m, pivots, n),
        None => std::sync::Arc::new(resolve_block_cuts_cols(param, m, pivots, n)),
    }
}

impl BlockCutsCache {
    /// Empty cache; entries populate on first resolve per (param, shape) key.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached [`resolve_block_cuts`] (row-dimension splits).
    pub fn rows(
        &self,
        param: BlockParam,
        n: usize,
        pivots: &[usize],
    ) -> std::sync::Arc<Vec<usize>> {
        let key = (param, n, usize::MAX, pivots_key(param, pivots));
        self.lookup(&self.rows, key, || resolve_block_cuts(param, n, pivots))
    }

    /// Cached [`resolve_block_cuts_cols`] (column-dimension splits).
    pub fn cols(
        &self,
        param: BlockParam,
        m: usize,
        pivots: &[usize],
        n: usize,
    ) -> std::sync::Arc<Vec<usize>> {
        let key = (param, m, n, pivots_key(param, pivots));
        self.lookup(&self.cols, key, || {
            resolve_block_cuts_cols(param, m, pivots, n)
        })
    }

    fn lookup(
        &self,
        table: &std::sync::Mutex<std::collections::HashMap<CutsKey, std::sync::Arc<Vec<usize>>>>,
        key: CutsKey,
        compute: impl FnOnce() -> Vec<usize>,
    ) -> std::sync::Arc<Vec<usize>> {
        use std::collections::hash_map::Entry;
        use std::sync::atomic::Ordering::Relaxed;
        if let Some(cuts) = table.lock().unwrap_or_else(|e| e.into_inner()).get(&key) {
            self.hits.fetch_add(1, Relaxed);
            return std::sync::Arc::clone(cuts);
        }
        // Compute outside the lock, then re-check under it: a lookup that
        // loses the insert race serves (and counts) the winner's entry, so
        // hit/miss stats stay deterministic per distinct key regardless of
        // how many tasks raced on first touch.
        let cuts = std::sync::Arc::new(compute());
        let mut t = table.lock().unwrap_or_else(|e| e.into_inner());
        match t.entry(key) {
            Entry::Occupied(e) => {
                self.hits.fetch_add(1, Relaxed);
                std::sync::Arc::clone(e.get())
            }
            Entry::Vacant(v) => {
                self.misses.fetch_add(1, Relaxed);
                v.insert(std::sync::Arc::clone(&cuts));
                cuts
            }
        }
    }

    /// Number of lookups served from the memo table.
    pub fn hits(&self) -> usize {
        self.hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of lookups that had to compute fresh cuts.
    pub fn misses(&self) -> usize {
        self.misses.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Approximate heap bytes held by the memo tables (keys + cut vectors),
    /// so a byte-budgeted session cache
    /// ([`SessionCache`](crate::sessioncache::SessionCache)) can account for
    /// a bundled cuts cache when charging an entry against its budget.
    pub fn approx_bytes(&self) -> usize {
        let table = |t: &std::sync::Mutex<
            std::collections::HashMap<CutsKey, std::sync::Arc<Vec<usize>>>,
        >| {
            let t = t.lock().unwrap_or_else(|e| e.into_inner());
            t.iter()
                .map(|(k, v)| {
                    std::mem::size_of::<CutsKey>()
                        + (k.3.len() + v.len()) * std::mem::size_of::<usize>()
                })
                .sum::<usize>()
        };
        table(&self.rows) + table(&self.cols)
    }
}

/// The paper's Table 1: optimal splitting parameters per algorithm, platform
/// and dimension (`S` = block size, `C` = block count). Used as defaults by
/// the benches and the FETI pipeline.
pub mod table1_defaults {
    use super::BlockParam;

    /// TRSM, RHS splitting — CPU 2D: `S 100`.
    pub const TRSM_RHS_CPU_2D: BlockParam = BlockParam::Size(100);
    /// TRSM, RHS splitting — CPU 3D: `S 100`.
    pub const TRSM_RHS_CPU_3D: BlockParam = BlockParam::Size(100);
    /// TRSM, RHS splitting — GPU 2D: `C 1`.
    pub const TRSM_RHS_GPU_2D: BlockParam = BlockParam::Count(1);
    /// TRSM, RHS splitting — GPU 3D: `S 1000`.
    pub const TRSM_RHS_GPU_3D: BlockParam = BlockParam::Size(1000);
    /// TRSM, factor splitting — CPU 2D: `S 200`.
    pub const TRSM_FACTOR_CPU_2D: BlockParam = BlockParam::Size(200);
    /// TRSM, factor splitting — CPU 3D: `S 200`.
    pub const TRSM_FACTOR_CPU_3D: BlockParam = BlockParam::Size(200);
    /// TRSM, factor splitting — GPU 2D: `S 1000`.
    pub const TRSM_FACTOR_GPU_2D: BlockParam = BlockParam::Size(1000);
    /// TRSM, factor splitting — GPU 3D: `S 500`.
    pub const TRSM_FACTOR_GPU_3D: BlockParam = BlockParam::Size(500);
    /// SYRK, input splitting — CPU 2D: `S 200`.
    pub const SYRK_INPUT_CPU_2D: BlockParam = BlockParam::Size(200);
    /// SYRK, input splitting — CPU 3D: `C 50`.
    pub const SYRK_INPUT_CPU_3D: BlockParam = BlockParam::Count(50);
    /// SYRK, input splitting — GPU 2D: `S 2000`.
    pub const SYRK_INPUT_GPU_2D: BlockParam = BlockParam::Size(2000);
    /// SYRK, input splitting — GPU 3D: `S 1000`.
    pub const SYRK_INPUT_GPU_3D: BlockParam = BlockParam::Size(1000);
    /// SYRK, output splitting — CPU 2D: `S 200`.
    pub const SYRK_OUTPUT_CPU_2D: BlockParam = BlockParam::Size(200);
    /// SYRK, output splitting — CPU 3D: `C 10`.
    pub const SYRK_OUTPUT_CPU_3D: BlockParam = BlockParam::Count(10);
    /// SYRK, output splitting — GPU 2D: `S 200`.
    pub const SYRK_OUTPUT_GPU_2D: BlockParam = BlockParam::Size(200);
    /// SYRK, output splitting — GPU 3D: `S 1000`.
    pub const SYRK_OUTPUT_GPU_3D: BlockParam = BlockParam::Size(1000);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_param_gives_uniform_cuts() {
        let cuts = resolve_block(BlockParam::Size(3), 10);
        assert_eq!(cuts, vec![0, 3, 6, 9, 10]);
    }

    #[test]
    fn count_param_divides_dimension() {
        let cuts = resolve_block(BlockParam::Count(4), 10);
        // block size = ceil(10/4) = 3
        assert_eq!(cuts, vec![0, 3, 6, 9, 10]);
    }

    #[test]
    fn count_one_is_single_block() {
        assert_eq!(resolve_block(BlockParam::Count(1), 7), vec![0, 7]);
    }

    #[test]
    fn degenerate_dimensions() {
        assert_eq!(resolve_block(BlockParam::Size(5), 0), vec![0]);
        assert_eq!(resolve_block(BlockParam::Size(100), 3), vec![0, 3]);
        // the zero-dimension single-cut `[0]` must be a no-op under the
        // `windows(2)` iteration every splitting kernel performs
        for param in [
            BlockParam::Size(5),
            BlockParam::Count(3),
            BlockParam::Balanced(3),
        ] {
            let cuts = resolve_block_cuts(param, 0, &[]);
            assert_eq!(cuts, vec![0], "{param:?}");
            assert_eq!(cuts.windows(2).count(), 0, "{param:?} must yield no blocks");
            let ccuts = resolve_block_cuts_cols(param, 0, &[], 7);
            assert_eq!(ccuts.windows(2).count(), 0, "{param:?} (cols)");
        }
    }

    #[test]
    fn balanced_cuts_equalize_work() {
        // pivots concentrated early: all 8 columns active from row 2 on —
        // work ramps up quickly, so balanced blocks must be smaller at the
        // top? No: equal-work blocks are smaller where MORE columns are
        // active. With all pivots at 0..2, later rows carry full width and
        // cuts are near-uniform; with pivots spread late, early blocks grow.
        let n = 100;
        let pivots: Vec<usize> = (0..8).map(|j| j * 12).collect();
        let cuts = resolve_block_cuts(BlockParam::Balanced(4), n, &pivots);
        assert_eq!(*cuts.first().unwrap(), 0);
        assert_eq!(*cuts.last().unwrap(), n);
        assert!(cuts.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
        // early blocks (few active columns) must be wider than late blocks
        let first = cuts[1] - cuts[0];
        let last = n - cuts[cuts.len() - 2];
        assert!(
            first > last,
            "balanced cuts should widen where the pattern is empty: {cuts:?}"
        );
        // per-block work within 2x of each other
        let work = |r0: usize, r1: usize| -> usize {
            (r0..r1)
                .map(|i| pivots.iter().filter(|&&p| p <= i).count())
                .sum()
        };
        let works: Vec<usize> = cuts.windows(2).map(|w| work(w[0], w[1])).collect();
        let (mn, mx) = (*works.iter().min().unwrap(), *works.iter().max().unwrap());
        assert!(mx <= 2 * mn + 8, "unbalanced works: {works:?}");
    }

    #[test]
    fn balanced_without_pattern_is_uniform() {
        let cuts = resolve_block_cuts(BlockParam::Size(3), 9, &[0, 5]);
        assert_eq!(cuts, vec![0, 3, 6, 9]);
    }

    #[test]
    fn balanced_handles_empty_pattern() {
        // no active columns at all: degenerate, must still terminate with
        // valid monotone cuts
        let cuts = resolve_block_cuts(BlockParam::Balanced(3), 10, &[10, 10]);
        assert_eq!(*cuts.first().unwrap(), 0);
        assert_eq!(*cuts.last().unwrap(), 10);
        assert!(cuts.windows(2).all(|w| w[0] < w[1]));
    }
}
