//! The stepped-shape column permutation of `B̃ᵀ` (paper §3).
//!
//! Rows of `B̃ᵀ` live in the factor's fill-reducing order and are **not**
//! permuted ("Permuting its rows … would interfere with the fill-reducing
//! permutation and be counterproductive. Hence, we only permute its
//! columns."). Columns are stably sorted by their pivot row, producing
//! non-decreasing column pivots — the property every splitting kernel relies
//! on.

use sc_dense::{MatOf, Scalar};
use sc_sparse::{pattern, CscOf, Perm};

/// `B̃ᵀ` in stepped form: the column-permuted matrix, its pivots, and the
/// permutation needed to map the assembled Schur complement back. Generic
/// over the working precision `S`; [`SteppedRhs`] aliases the `f64`
/// instantiation.
#[derive(Clone, Debug)]
pub struct SteppedRhsOf<S: Scalar = f64> {
    /// Column-permuted `B̃ᵀ` (rows untouched).
    pub bt: CscOf<S>,
    /// Column pivots (first non-zero row per column), non-decreasing; empty
    /// columns carry the sentinel `nrows` and sort to the right.
    pub pivots: Vec<usize>,
    /// Column permutation applied (`old_of_new`).
    pub col_perm: Perm,
}

/// `f64` stepped form (the historical type).
pub type SteppedRhs = SteppedRhsOf<f64>;

impl<S: Scalar> SteppedRhsOf<S> {
    /// Build the stepped form of `bt` (`n × m`, rows already in the factor's
    /// permuted space).
    pub fn new(bt: &CscOf<S>) -> Self {
        let raw_pivots = pattern::pivots_or_end(bt);
        let mut order: Vec<usize> = (0..bt.ncols()).collect();
        order.sort_by_key(|&j| raw_pivots[j]); // stable: preserves ties
        let col_perm = Perm::from_old_of_new(order);
        let stepped = bt.permute_cols(&col_perm);
        let pivots = pattern::pivots_or_end(&stepped);
        debug_assert!(pattern::is_stepped(&stepped));
        SteppedRhsOf {
            bt: stepped,
            pivots,
            col_perm,
        }
    }

    /// Number of rows (factor dimension).
    pub fn nrows(&self) -> usize {
        self.bt.nrows()
    }

    /// Number of columns (local multipliers).
    pub fn ncols(&self) -> usize {
        self.bt.ncols()
    }

    /// Number of columns whose pivot is strictly below `row_end` — the
    /// *effective width* used by factor splitting and input-split SYRK.
    pub fn active_width(&self, row_end: usize) -> usize {
        self.pivots.partition_point(|&p| p < row_end)
    }

    /// Dense expansion of the stepped matrix (the TRSM right-hand side).
    pub fn to_dense(&self) -> MatOf<S> {
        self.bt.to_dense()
    }

    /// Map a matrix indexed by stepped columns back to original multiplier
    /// indices: `out[orig_i, orig_j] = f[step_i, step_j]`.
    pub fn unpermute_symmetric(&self, f: &MatOf<S>) -> MatOf<S> {
        let m = self.ncols();
        assert_eq!(f.nrows(), m);
        assert_eq!(f.ncols(), m);
        let mut out = MatOf::<S>::zeros(m, m);
        for js in 0..m {
            let jo = self.col_perm.old_of_new(js);
            for is in 0..m {
                let io = self.col_perm.old_of_new(is);
                out[(io, jo)] = f[(is, js)];
            }
        }
        out
    }

    /// Fraction of the dense area below the pivots (work remaining after the
    /// optimization; → 1/3 for a perfect triangle, paper §4.3).
    pub fn fill_ratio(&self) -> f64 {
        pattern::stepped_fill_ratio(&self.bt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_sparse::{Coo, Csc};

    fn unsorted_bt() -> Csc {
        // 6×4, pivots: col0 -> 4, col1 -> 0, col2 -> 2, col3 -> 0
        let mut c = Coo::new(6, 4);
        c.push(4, 0, 1.0);
        c.push(0, 1, 1.0);
        c.push(5, 1, -1.0);
        c.push(2, 2, 1.0);
        c.push(0, 3, -1.0);
        c.push(1, 3, 1.0);
        c.to_csc()
    }

    #[test]
    fn permutation_sorts_pivots() {
        let s = SteppedRhs::new(&unsorted_bt());
        assert_eq!(s.pivots, vec![0, 0, 2, 4]);
        assert!(sc_sparse::pattern::is_stepped(&s.bt));
        // stable: among pivot-0 columns, original order (1 before 3) kept
        assert_eq!(s.col_perm.old_of_new(0), 1);
        assert_eq!(s.col_perm.old_of_new(1), 3);
    }

    #[test]
    fn active_width_counts_started_columns() {
        let s = SteppedRhs::new(&unsorted_bt());
        assert_eq!(s.active_width(0), 0);
        assert_eq!(s.active_width(1), 2);
        assert_eq!(s.active_width(3), 3);
        assert_eq!(s.active_width(6), 4);
    }

    #[test]
    fn unpermute_restores_original_indexing() {
        let s = SteppedRhs::new(&unsorted_bt());
        let m = s.ncols();
        // f_perm[i][j] = i*10 + j in stepped space
        let f = sc_dense::Mat::from_fn(m, m, |i, j| (i * 10 + j) as f64);
        let out = s.unpermute_symmetric(&f);
        for js in 0..m {
            for is in 0..m {
                let io = s.col_perm.old_of_new(is);
                let jo = s.col_perm.old_of_new(js);
                assert_eq!(out[(io, jo)], f[(is, js)]);
            }
        }
    }

    #[test]
    fn pivots_monotone_for_random_patterns() {
        // The stepped invariant on arbitrary gluing patterns: after the
        // column permutation the pivot row indices are sorted ascending
        // (the staircase descends left to right), with empty columns (pivot
        // sentinel = nrows) at the far right.
        let mut state = 0x5EEDu64;
        let mut rnd = move |bound: usize| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % bound
        };
        for trial in 0usize..50 {
            let n = 5 + rnd(40);
            let m = 1 + rnd(25);
            let mut c = Coo::new(n, m);
            for j in 0..m {
                if trial.is_multiple_of(7) && j % 5 == 4 {
                    continue; // leave some columns empty
                }
                let k = 1 + rnd(3);
                for _ in 0..k {
                    c.push(rnd(n), j, 1.0);
                }
            }
            let s = SteppedRhs::new(&c.to_csc());
            assert!(
                s.pivots.windows(2).all(|w| w[0] <= w[1]),
                "pivots must be sorted after the stepped permutation: {:?}",
                s.pivots
            );
            assert!(sc_sparse::pattern::is_stepped(&s.bt));
            assert!(s.pivots.iter().all(|&p| p <= n));
        }
    }

    #[test]
    fn unpermute_roundtrip_is_exact() {
        // un-permuting F̃ and re-applying the stepped permutation must
        // reproduce the original matrix bitwise — the "final phase"
        // permutation of the assembler is a pure relabeling.
        let s = SteppedRhs::new(&unsorted_bt());
        let m = s.ncols();
        let f = sc_dense::Mat::from_fn(m, m, |i, j| ((i * 31 + j * 17) % 13) as f64 * 0.125 - 0.75);
        let g = s.unpermute_symmetric(&f);
        let mut back = sc_dense::Mat::zeros(m, m);
        for js in 0..m {
            for is in 0..m {
                back[(is, js)] = g[(s.col_perm.old_of_new(is), s.col_perm.old_of_new(js))];
            }
        }
        assert_eq!(back, f, "round-trip must be bitwise exact");
    }

    #[test]
    fn empty_columns_sort_last() {
        let mut c = Coo::new(4, 3);
        c.push(1, 1, 1.0); // cols 0 and 2 empty
        let s = SteppedRhs::new(&c.to_csc());
        assert_eq!(s.pivots, vec![1, 4, 4]);
    }
}
