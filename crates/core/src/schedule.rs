//! Memory-aware, cost-model-driven stream scheduling for the batched GPU
//! assembly (paper §4.4).
//!
//! The paper's production loop assembles hundreds of `F̃ᵢ` per cluster by
//! submitting subdomains over 16 CUDA streams under a fixed temporary-arena
//! budget; its CUDA predecessor (arXiv:2502.08382) shows that *stream
//! scheduling and memory admission*, not kernel speed alone, decide
//! throughput at that scale. This module is the planner behind
//! [`assemble_sc_batch_scheduled`](crate::batch::assemble_sc_batch_scheduled):
//!
//! 1. [`estimate_cost`] prices each subdomain from its stepped pattern —
//!    TRSM and SYRK FLOPs below the column pivots, H2D transfer bytes, and
//!    the peak temporary footprint (`Y` plus densified factor blocks);
//! 2. [`plan`] orders submission **longest-processing-time-first** and
//!    assigns each subdomain to the **least-loaded stream**
//!    ([`StreamPolicy::LptLeastLoaded`]; [`StreamPolicy::RoundRobin`] keeps
//!    the naive index-order assignment as the comparison baseline);
//! 3. [`ArenaSim`] admits each subdomain against the device's
//!    [`TempPool`](sc_gpu::TempPool) capacity **in simulated time**, so
//!    concurrent temporaries never oversubscribe the arena. A stream whose
//!    next subdomain does not fit *stalls until a holder releases* — the
//!    paper's **"wait"** configuration. Per-subdomain host-readiness times
//!    (factorization finishing on the CPU while the device assembles other
//!    subdomains) are applied through
//!    [`Device::advance_stream`](sc_gpu::Device::advance_stream) — the
//!    paper's **"mix"** configuration
//!    ([`ScheduleOptions::ready_at`]).

use crate::assemble::ScParams;
use crate::trsm::{FactorStorage, TrsmVariant};
use sc_dense::Scalar;
use sc_gpu::{DeviceSpec, Interconnect, KernelCost, SimSpan};
use sc_sparse::{pattern, Csc, CscOf};

/// Stream-assignment policy for a batched GPU assembly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StreamPolicy {
    /// Subdomain `i` goes to stream `i % n_streams`, in index order — the
    /// blind baseline (and the only thing the pre-scheduler driver did).
    RoundRobin,
    /// Longest-processing-time-first: subdomains sorted by estimated cost
    /// descending, each assigned to the currently least-loaded stream. The
    /// classic 4/3-approximation for makespan on identical machines.
    #[default]
    LptLeastLoaded,
}

/// Options of the scheduled (single-device) batch driver — the `schedule`
/// payload of [`Target::Gpu`](crate::Target::Gpu).
///
/// Construct with [`Default`] and the `with_*` setters (the struct is
/// `#[non_exhaustive]`, so it may grow fields without breaking callers):
///
/// ```
/// use sc_core::{ScheduleOptions, StreamPolicy};
/// let opts = ScheduleOptions::default()
///     .with_policy(StreamPolicy::RoundRobin)
///     .with_ready_at(vec![0.0, 0.5]);
/// assert_eq!(opts.policy, StreamPolicy::RoundRobin);
/// ```
#[derive(Clone, Debug, Default)]
#[non_exhaustive]
pub struct ScheduleOptions {
    /// Stream-assignment policy.
    pub policy: StreamPolicy,
    /// Per-subdomain host-readiness times in simulated seconds (the paper's
    /// "mix" configuration: subdomain `i`'s factorization finishes on the
    /// host at `ready_at[i]`, so its kernels cannot start earlier — applied
    /// via `Device::advance_stream`). `None` means everything is ready at
    /// `t = 0` (the "wait"-only configuration).
    pub ready_at: Option<Vec<f64>>,
}

impl ScheduleOptions {
    /// Set the stream-assignment policy.
    pub fn with_policy(mut self, policy: StreamPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Set per-subdomain host-readiness times (the "mix" configuration).
    pub fn with_ready_at(mut self, ready_at: Vec<f64>) -> Self {
        self.ready_at = Some(ready_at);
        self
    }
}

/// Cost estimate of one subdomain's assembly, derived from the stepped
/// pattern (pivots), `n_dofs`, and `n_lambda` — computed *before* any kernel
/// runs, which is what lets the planner order submissions.
#[derive(Clone, Debug)]
pub struct CostEstimate {
    /// Position of the subdomain in the input batch.
    pub index: usize,
    /// Factor dimension.
    pub n_dofs: usize,
    /// Local multiplier count.
    pub n_lambda: usize,
    /// Estimated TRSM FLOPs: dense forward substitution below each column's
    /// pivot, `Σⱼ (n − pⱼ)²`.
    pub trsm_flops: f64,
    /// Estimated SYRK FLOPs: with sorted pivots, column `j` pairs with the
    /// `j + 1` columns left of it over rows `pⱼ..n`: `Σⱼ 2 (j+1) (n − pⱼ)`.
    pub syrk_flops: f64,
    /// H2D bytes for the factor and gluing block.
    pub transfer_bytes: f64,
    /// Peak temporary-arena footprint: the dense `Y` (`8 n m` bytes) plus
    /// densified factor blocks when the TRSM densifies.
    pub temp_bytes: usize,
    /// Boundary bytes this subdomain exchanges with off-node neighbours per
    /// placement (one value per local multiplier — the lambda segment the
    /// gluing rows tie to other subdomains). The hierarchical planner prices
    /// this over the [`Interconnect`] of any node boundary a placement
    /// crosses; irrelevant (and unpriced) below the node level.
    pub exchange_bytes: f64,
    /// Single-stream device-seconds estimate under `spec` (compute at peak
    /// FP64 plus the PCIe transfer) — the LPT ordering key.
    pub seconds: f64,
}

/// Price one subdomain under the given device spec and resolved parameters,
/// in working precision `S` — every value-byte term scales with
/// [`Scalar::BYTES`] (index traffic stays 8 bytes per entry), so `f32`
/// halves the arena footprint and the value share of the H2D transfer.
/// [`estimate_cost`] pins `S = f64` and reproduces the historical constants
/// bitwise.
pub fn estimate_cost_of<S: Scalar>(
    spec: &DeviceSpec,
    l: &CscOf<S>,
    bt: &CscOf<S>,
    params: &ScParams,
    index: usize,
) -> CostEstimate {
    /// Bytes of one stored index in the transfer model (row ids travel as
    /// 8-byte words regardless of value precision).
    const INDEX_BYTES: usize = 8;
    let eb = S::BYTES;
    let n = l.ncols();
    let m = bt.ncols();
    // sorted pivots — the stepped pattern the kernels will actually see
    // (identical to SteppedRhs::new's, without building the permuted matrix)
    let mut pivots = pattern::pivots_or_end(bt);
    pivots.sort_unstable();

    let mut trsm_flops = 0.0;
    let mut syrk_flops = 0.0;
    for (j, &p) in pivots.iter().enumerate() {
        let below = n.saturating_sub(p) as f64; // sc-analyze: allow(precision-discipline)
        trsm_flops += below * below;
        syrk_flops += 2.0 * (j + 1) as f64 * below; // sc-analyze: allow(precision-discipline)
    }
    let transfer_bytes = (INDEX_BYTES + eb) as f64 * (l.nnz() + bt.nnz()) as f64; // sc-analyze: allow(precision-discipline)

    // temporary footprint: the dense RHS/solution Y always lives in the
    // arena; densifying TRSM variants additionally materialize factor
    // blocks, and the pruning path gathers a dense sub-diagonal panel plus
    // a compacted GEMM output regardless of factor storage
    let y_bytes = eb * n * m;
    let factor_bytes = match (params.factor_storage, params.trsm) {
        (storage, TrsmVariant::FactorSplit { block, prune }) => {
            let bs = block.block_size(n).min(n);
            // densified diagonal block + sub-diagonal panel, one at a time
            let dense_blocks = if storage == FactorStorage::Dense || prune {
                eb * n * bs
            } else {
                0
            };
            // pruning: compacted rows of the GEMM update (≤ n × width)
            let prune_out = if prune { eb * n * m } else { 0 };
            dense_blocks + prune_out
        }
        (FactorStorage::Dense, _) => eb * n * n,
        // sparse kernels work off the (persistent) CSC factor; RHS splitting
        // extracts trailing subfactors, bounded by the factor itself
        (FactorStorage::Sparse, TrsmVariant::RhsSplit(_)) => (INDEX_BYTES + eb) * l.nnz(),
        (FactorStorage::Sparse, _) => 0,
    };
    let temp_bytes = y_bytes + factor_bytes;

    let mut est = CostEstimate {
        index,
        n_dofs: n,
        n_lambda: m,
        trsm_flops,
        syrk_flops,
        transfer_bytes,
        temp_bytes,
        exchange_bytes: (eb * m) as f64, // sc-analyze: allow(precision-discipline)
        seconds: 0.0,
    };
    est.seconds = est.seconds_on(spec);
    est
}

/// Price one `f64` subdomain (the historical entry point; see
/// [`estimate_cost_of`]).
pub fn estimate_cost(
    spec: &DeviceSpec,
    l: &Csc,
    bt: &Csc,
    params: &ScParams,
    index: usize,
) -> CostEstimate {
    estimate_cost_of::<f64>(spec, l, bt, params, index)
}

impl CostEstimate {
    /// Re-price the single-stream seconds estimate under a different device
    /// spec (compute at peak FP64 plus the PCIe transfer) — what the
    /// cluster planner uses to compare placements on heterogeneous pools.
    pub fn seconds_on(&self, spec: &DeviceSpec) -> f64 {
        (self.trsm_flops + self.syrk_flops) / (spec.fp64_gflops * 1e9)
            + self.transfer_bytes / (spec.pcie_bandwidth_gbps * 1e9)
    }
}

/// Per-PCPG-iteration cost of *applying* one subdomain's dual operator in
/// each formulation, as kernel sequences priced under any [`DeviceSpec`]'s
/// duration model (launch overhead and occupancy included — which is what
/// makes many tiny implicit solves expensive on a GPU and cheap on the
/// host). Together with [`CostEstimate`] (the one-time assembly cost) this
/// is the input of the hybrid explicit-vs-implicit decision:
///
/// - **explicit** apply is one dense GEMV with the assembled `m × m` `F̃ᵢ`
///   (paper Eq. 12);
/// - **implicit** apply is the Eq. 11 pipeline: scatter `B̃ᵀ p̃` (SpMV),
///   two sparse triangular solves with `L`, gather `B̃ (·)` (SpMV).
#[derive(Clone, Debug)]
pub struct ApplyEstimate {
    /// Position of the subdomain in the input batch.
    pub index: usize,
    /// Local multiplier count (order of `F̃ᵢ`).
    pub n_lambda: usize,
    /// Kernel sequence of one explicit application.
    pub explicit: Vec<KernelCost>,
    /// Kernel sequence of one implicit application.
    pub implicit: Vec<KernelCost>,
}

/// Price one subdomain's per-iteration apply cost in both formulations from
/// its factor and gluing block (shapes only — no kernel runs), in working
/// precision `S` — the kernel costs price value traffic at [`Scalar::BYTES`].
/// [`estimate_apply`] pins `S = f64`.
pub fn estimate_apply_of<S: Scalar>(l: &CscOf<S>, bt: &CscOf<S>, index: usize) -> ApplyEstimate {
    let m = bt.ncols();
    ApplyEstimate {
        index,
        n_lambda: m,
        explicit: vec![KernelCost::gemv_of::<S>(m, m)],
        implicit: vec![
            KernelCost::spmm_of::<S>(bt.nnz(), 1), // t = B̃ᵀ p̃ (scatter)
            KernelCost::trsm_sparse_of::<S>(l.nnz(), 1), // L y = t
            KernelCost::trsm_sparse_of::<S>(l.nnz(), 1), // Lᵀ z = y
            KernelCost::spmm_of::<S>(bt.nnz(), 1), // q̃ = B̃ z (gather)
        ],
    }
}

/// Price one `f64` subdomain's apply cost (see [`estimate_apply_of`]).
pub fn estimate_apply(l: &Csc, bt: &Csc, index: usize) -> ApplyEstimate {
    estimate_apply_of::<f64>(l, bt, index)
}

impl ApplyEstimate {
    /// Seconds of one explicit application under `spec`.
    pub fn explicit_seconds_on(&self, spec: &DeviceSpec) -> f64 {
        self.explicit.iter().map(|c| spec.kernel_seconds(c)).sum()
    }

    /// Seconds of one implicit application under `spec`.
    pub fn implicit_seconds_on(&self, spec: &DeviceSpec) -> f64 {
        self.implicit.iter().map(|c| spec.kernel_seconds(c)).sum()
    }
}

/// Per-stream submission queues produced by [`plan`].
#[derive(Clone, Debug)]
pub struct StreamPlan {
    /// `assignments[s]` lists the subdomain indices stream `s` will process,
    /// in submission order.
    pub assignments: Vec<Vec<usize>>,
    /// Estimated total load per stream (seconds), for diagnostics.
    pub est_load: Vec<f64>,
}

/// Assign subdomains to `n_streams` streams under the given policy.
///
/// An empty batch yields an empty plan for any stream count (including 0);
/// planning a non-empty batch onto 0 streams is a configuration error and
/// panics with a descriptive message instead of silently rounding up.
#[deprecated(
    since = "0.3.0",
    note = "use `plan_topology` with a `Topology::streams` leaf — this \
            wrapper survives only for source compatibility"
)]
pub fn plan(costs: &[CostEstimate], n_streams: usize, policy: StreamPolicy) -> StreamPlan {
    plan_streams_impl(costs, n_streams, policy)
}

/// Non-deprecated stream-level engine entry shared by [`plan`] and the
/// batch drivers (which must not call through a deprecated name).
pub(crate) fn plan_streams_impl(
    costs: &[CostEstimate],
    n_streams: usize,
    policy: StreamPolicy,
) -> StreamPlan {
    plan_topology_by(costs, &Topology::streams(n_streams, policy), |c, _| {
        c.seconds
    })
    .expect("stream-level planning has no failure mode")
    .into_stream_plan()
}

/// Planner-facing description of one device of a pool: its capability spec,
/// its temporary-arena capacity, and its stream count.
#[derive(Clone, Debug)]
pub struct DeviceSlot {
    /// Capability spec (per-device cost pricing on heterogeneous pools).
    pub spec: DeviceSpec,
    /// Temporary-arena capacity in bytes
    /// ([`TempPool::capacity`](sc_gpu::TempPool::capacity)) — the
    /// admissibility bound: a subdomain whose peak temporaries exceed it can
    /// never run on this device.
    pub arena_capacity: usize,
    /// Number of streams (parallel capacity of the device).
    pub n_streams: usize,
}

impl DeviceSlot {
    /// Describe a simulated device for the planner.
    pub fn of(device: &sc_gpu::Device) -> Self {
        DeviceSlot {
            spec: device.spec().clone(),
            arena_capacity: device.arena_capacity(),
            n_streams: device.n_streams(),
        }
    }

    /// Whether the device can execute anything at all (a drained card with
    /// 0 streams cannot) — the **single** usability predicate every planner
    /// filters on.
    pub fn is_usable(&self) -> bool {
        self.n_streams > 0
    }

    /// Whether a subdomain whose peak temporaries are `temp_bytes` may be
    /// placed on this device: usable and within the arena capacity. The
    /// admissibility rule shared by the cluster partition and the hybrid
    /// formulation decision.
    pub fn admits(&self, temp_bytes: usize) -> bool {
        self.is_usable() && temp_bytes <= self.arena_capacity
    }
}

/// Device-level partition of a batch produced by [`plan_cluster`].
#[derive(Clone, Debug)]
pub struct ClusterPlan {
    /// `per_device[d]` lists the subdomain indices
    /// ([`CostEstimate::index`]) assigned to device `d`.
    pub per_device: Vec<Vec<usize>>,
    /// Estimated total load per device in that device's own seconds.
    pub est_load: Vec<f64>,
    /// Device of each entry of the input cost slice, in slice order (batch
    /// order when the costs were priced in batch order). Entries spilled by
    /// [`plan_cluster_spill_by`] hold `usize::MAX`.
    pub device_of: Vec<usize>,
}

/// Why a batch could not be partitioned across a device pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClusterPlanError {
    /// The batch is non-empty but the pool holds no device that could
    /// execute anything (no devices at all, or none with streams).
    NoDevices,
    /// One or more subdomains' peak temporary footprints exceed every
    /// stream-capable device's arena: they cannot be assembled explicitly
    /// anywhere in this pool. Unlike a hard placement failure this is
    /// **recoverable**: the payload names every offending subdomain, so a
    /// caller with a fallback formulation (the hybrid operator's implicit
    /// path) can reroute them and re-plan the remainder — that is exactly
    /// what [`plan_cluster_spill`] automates.
    Spilled {
        /// Batch indices of every subdomain that fits no device arena,
        /// ascending.
        spilled: Vec<usize>,
        /// The largest usable (stream-capable) arena capacity in the pool.
        max_arena: usize,
    },
}

impl std::fmt::Display for ClusterPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterPlanError::NoDevices => write!(
                f,
                "cannot partition a non-empty batch: the pool holds no \
                 device with streams"
            ),
            ClusterPlanError::Spilled { spilled, max_arena } => write!(
                f,
                "{} subdomain(s) {spilled:?} need more temporaries than the \
                 largest device arena in the pool ({max_arena} B); recoverable: \
                 reroute them to the implicit formulation (plan_cluster_spill \
                 / DualMode::Hybrid) or re-plan without them",
                spilled.len()
            ),
        }
    }
}

impl std::error::Error for ClusterPlanError {}

/// Partition a batch across the devices of a pool: **cost-aware LPT with
/// per-device arena admissibility**. Subdomains are taken longest-first
/// (priced under each device's own spec, so a slow card sees bigger numbers)
/// and each goes to the admissible device whose estimated completion time —
/// accumulated load over its stream count — stays lowest. A subdomain whose
/// temporaries exceed a device's arena capacity is never placed there;
/// when only the big card fits it, it falls back to the big card regardless
/// of load. The per-device queues are then scheduled independently by
/// [`plan`] + arena admission inside the batch driver.
///
/// Pricing is the analytic [`CostEstimate::seconds_on`]; when the exact
/// per-device kernel durations are already known (recorded kernel
/// sequences), use [`plan_cluster_by`] — peak-FLOP pricing ignores launch
/// overhead and overloads fast cards on launch-bound batches.
#[deprecated(
    since = "0.3.0",
    note = "use `plan_topology` over a single-node `Topology` — this \
            wrapper survives only for source compatibility"
)]
pub fn plan_cluster(
    costs: &[CostEstimate],
    devices: &[DeviceSlot],
) -> Result<ClusterPlan, ClusterPlanError> {
    cluster_by_impl(costs, devices, |c, d| c.seconds_on(&devices[d].spec))
}

/// [`plan_cluster`] with caller-supplied pricing: `seconds_of(cost, d)`
/// returns the subdomain's single-stream seconds on device `d`. The batch
/// drivers pass the recorded kernel sequences priced by each device's own
/// duration model ([`DeviceSpec::kernel_seconds`]), which accounts for
/// launch overhead and the occupancy ramp that the analytic estimate
/// ignores.
#[deprecated(
    since = "0.3.0",
    note = "use `plan_topology_by` over a single-node `Topology` — this \
            wrapper survives only for source compatibility"
)]
pub fn plan_cluster_by(
    costs: &[CostEstimate],
    devices: &[DeviceSlot],
    seconds_of: impl Fn(&CostEstimate, usize) -> f64,
) -> Result<ClusterPlan, ClusterPlanError> {
    cluster_by_impl(costs, devices, seconds_of)
}

/// Non-deprecated strict (non-spill) cluster engine entry shared by the
/// deprecated wrappers and the batch drivers.
pub(crate) fn cluster_by_impl(
    costs: &[CostEstimate],
    devices: &[DeviceSlot],
    seconds_of: impl Fn(&CostEstimate, usize) -> f64,
) -> Result<ClusterPlan, ClusterPlanError> {
    let (plan, spilled) = cluster_spill_by_impl(costs, devices, seconds_of)?;
    if spilled.is_empty() {
        Ok(plan)
    } else {
        Err(ClusterPlanError::Spilled {
            spilled,
            max_arena: max_usable_arena(devices),
        })
    }
}

/// Largest arena capacity among stream-capable devices (0 when none) —
/// the payload of [`ClusterPlanError::Spilled`], shared with the batch
/// driver's strict (non-spill) failure path.
pub(crate) fn max_usable_arena(devices: &[DeviceSlot]) -> usize {
    devices
        .iter()
        .filter(|d| d.is_usable())
        .map(|d| d.arena_capacity)
        .max()
        .unwrap_or(0)
}

/// [`plan_cluster_spill_by`] with the analytic [`CostEstimate::seconds_on`]
/// pricing.
#[deprecated(
    since = "0.3.0",
    note = "use `plan_topology` over a single-node `Topology` (spills are \
            reported in `TopoPlan::spilled`) — this wrapper survives only \
            for source compatibility"
)]
pub fn plan_cluster_spill(
    costs: &[CostEstimate],
    devices: &[DeviceSlot],
) -> Result<(ClusterPlan, Vec<usize>), ClusterPlanError> {
    cluster_spill_by_impl(costs, devices, |c, d| c.seconds_on(&devices[d].spec))
}

/// Spill-tolerant cluster partition: like [`plan_cluster_by`], but a
/// subdomain whose temporaries fit no stream-capable device arena is
/// **spilled** — returned in the second tuple element (batch order) instead
/// of failing the whole plan. Spilled entries keep `device_of == usize::MAX`
/// and appear in no per-device queue; the caller reroutes them (the hybrid
/// operator applies them implicitly). [`ClusterPlanError::NoDevices`] is
/// still an error: with no usable device *nothing* can be planned, spilling
/// everything would just disguise a configuration error.
#[deprecated(
    since = "0.3.0",
    note = "use `plan_topology_by` over a single-node `Topology` (spills \
            are reported in `TopoPlan::spilled`) — this wrapper survives \
            only for source compatibility"
)]
pub fn plan_cluster_spill_by(
    costs: &[CostEstimate],
    devices: &[DeviceSlot],
    seconds_of: impl Fn(&CostEstimate, usize) -> f64,
) -> Result<(ClusterPlan, Vec<usize>), ClusterPlanError> {
    cluster_spill_by_impl(costs, devices, seconds_of)
}

/// Non-deprecated spill-tolerant cluster engine entry shared by the
/// deprecated wrappers and the batch drivers: builds the single-node
/// [`Topology`] (one [`Topology::Device`] leaf per slot, no link) and runs
/// the hierarchical planner, which reproduces the historical two-level
/// semantics bitwise.
pub(crate) fn cluster_spill_by_impl(
    costs: &[CostEstimate],
    devices: &[DeviceSlot],
    seconds_of: impl Fn(&CostEstimate, usize) -> f64,
) -> Result<(ClusterPlan, Vec<usize>), ClusterPlanError> {
    let topo = Topology::node(
        devices
            .iter()
            .map(|d| Topology::device(d.clone()))
            .collect(),
        None,
    );
    let plan = plan_topology_by(costs, &topo, |c, path| seconds_of(c, path[0]))?;
    let spilled = plan.spilled.clone();
    Ok((plan.into_cluster_plan(), spilled))
}

/// One vertex of a placement hierarchy: the recursive generalization of the
/// historical two planning levels (devices of a pool, streams of a device)
/// to an arbitrary node → device → stream tree.
///
/// - [`Topology::Streams`] is a leaf of homogeneous lanes — the historical
///   [`plan`] level;
/// - [`Topology::Device`] is one device of a pool (its [`DeviceSlot`] spec,
///   arena, and stream count) — the historical `plan_cluster*` level, which
///   plans its streams as a nested [`Topology::Streams`];
/// - [`Topology::Node`] groups children behind an optional
///   [`Interconnect`]: a single-node device pool when the link is `None`
///   (historical semantics bitwise), a cluster node when pricing
///   placements behind the link's latency/bandwidth model
///   ([`CostEstimate::exchange_bytes`] crosses it).
#[derive(Clone, Debug)]
pub enum Topology {
    /// A leaf of `n` identical lanes planned under `policy` (the historical
    /// stream level).
    Streams {
        /// Number of lanes (streams).
        n: usize,
        /// Lane-assignment policy.
        policy: StreamPolicy,
    },
    /// One device of a pool; its streams are planned as a nested lane leaf
    /// under `policy`.
    Device {
        /// The device's planner-facing description.
        slot: DeviceSlot,
        /// Stream-assignment policy of the nested lane level.
        policy: StreamPolicy,
    },
    /// A group of children (devices of one node, or nodes of a cluster)
    /// reached over an optional interconnect.
    Node {
        /// Child vertices, in placement order.
        children: Vec<Topology>,
        /// The link a placement into this subtree crosses (`None` inside a
        /// node: PCIe traffic is already priced by the per-device cost
        /// model).
        link: Option<Interconnect>,
    },
}

impl Topology {
    /// A lane leaf of `n` streams.
    pub fn streams(n: usize, policy: StreamPolicy) -> Self {
        Topology::Streams { n, policy }
    }

    /// A device vertex with the default stream policy.
    pub fn device(slot: DeviceSlot) -> Self {
        Topology::Device {
            slot,
            policy: StreamPolicy::default(),
        }
    }

    /// A device vertex with an explicit stream policy.
    pub fn device_with(slot: DeviceSlot, policy: StreamPolicy) -> Self {
        Topology::Device { slot, policy }
    }

    /// A grouping vertex over `children`, optionally behind `link`.
    pub fn node(children: Vec<Topology>, link: Option<Interconnect>) -> Self {
        Topology::Node { children, link }
    }

    /// The single-node topology of a [`DevicePool`](sc_gpu::DevicePool):
    /// one [`Topology::Device`] child per device, no link — the shape the
    /// historical `plan_cluster*` family planned.
    pub fn of_pool(pool: &sc_gpu::DevicePool, policy: StreamPolicy) -> Self {
        Topology::node(
            pool.devices()
                .iter()
                .map(|d| Topology::device_with(DeviceSlot::of(d), policy))
                .collect(),
            None,
        )
    }

    /// The three-level topology of a [`NodePool`](sc_gpu::NodePool): a root
    /// over one [`Topology::Node`] per cluster node (behind that node's
    /// [`Interconnect`]), each holding its devices.
    pub fn of_cluster(pool: &sc_gpu::NodePool, policy: StreamPolicy) -> Self {
        Topology::node(
            pool.nodes()
                .iter()
                .map(|ns| {
                    let inner = Topology::of_pool(&ns.pool, policy);
                    match inner {
                        Topology::Node { children, .. } => Topology::node(children, Some(ns.link)),
                        other => other,
                    }
                })
                .collect(),
            None,
        )
    }

    /// Parallel capacity below this vertex: total stream count (the load
    /// normalizer of the selection key — the historical
    /// `est_load / n_streams` completion-time estimate).
    pub fn weight(&self) -> f64 {
        match self {
            Topology::Streams { n, .. } => *n as f64, // sc-analyze: allow(precision-discipline)
            Topology::Device { slot, .. } => slot.n_streams as f64, // sc-analyze: allow(precision-discipline)
            Topology::Node { children, .. } => children
                .iter()
                .filter(|c| c.is_usable())
                .map(|c| c.weight())
                .sum(),
        }
    }

    /// Whether anything can execute below this vertex (the historical
    /// [`DeviceSlot::is_usable`] lifted over the tree).
    pub fn is_usable(&self) -> bool {
        match self {
            Topology::Streams { n, .. } => *n > 0,
            Topology::Device { slot, .. } => slot.is_usable(),
            Topology::Node { children, .. } => children.iter().any(|c| c.is_usable()),
        }
    }

    /// Whether a subdomain whose peak temporaries are `temp_bytes` may be
    /// placed somewhere below this vertex (the historical
    /// [`DeviceSlot::admits`] lifted over the tree).
    pub fn admits(&self, temp_bytes: usize) -> bool {
        match self {
            Topology::Streams { n, .. } => *n > 0,
            Topology::Device { slot, .. } => slot.admits(temp_bytes),
            Topology::Node { children, .. } => children.iter().any(|c| c.admits(temp_bytes)),
        }
    }

    /// Analytic single-stream pricing of `cost` at the vertex reached by
    /// `path` (child indices from this vertex down): the
    /// [`CostEstimate::seconds_on`] model at device vertices, the estimate's
    /// own seconds at bare lane leaves. The default pricing of
    /// [`plan_topology`].
    pub fn analytic_seconds(&self, cost: &CostEstimate, path: &[usize]) -> f64 {
        match (self, path) {
            (Topology::Device { slot, .. }, _) => cost.seconds_on(&slot.spec),
            (Topology::Streams { .. }, _) => cost.seconds,
            (Topology::Node { children, .. }, [head, rest @ ..]) => {
                children[*head].analytic_seconds(cost, rest)
            }
            (Topology::Node { .. }, []) => cost.seconds,
        }
    }
}

/// Hierarchical placement produced by [`plan_topology`]: one level of
/// child queues plus the recursively planned children. Collapse a
/// single-level plan back to the historical shapes with
/// [`TopoPlan::into_stream_plan`] / [`TopoPlan::into_cluster_plan`].
#[derive(Clone, Debug)]
pub struct TopoPlan {
    /// `per_child[d]` lists the subdomain indices ([`CostEstimate::index`])
    /// assigned below child `d`, in placement order. For a lane leaf the
    /// children are the lanes (streams).
    pub per_child: Vec<Vec<usize>>,
    /// Estimated accumulated load per child, in that child's own seconds.
    pub est_load: Vec<f64>,
    /// Child of each entry of the input cost slice, in slice order;
    /// `usize::MAX` for spilled entries.
    pub child_of: Vec<usize>,
    /// Subdomain indices admitted by no child (ascending); empty below the
    /// group level.
    pub spilled: Vec<usize>,
    /// Recursively planned children (empty for lane leaves): `children[d]`
    /// plans the subset `per_child[d]` one level down.
    pub children: Vec<TopoPlan>,
}

impl TopoPlan {
    /// Collapse a lane-leaf plan into the historical [`StreamPlan`].
    pub fn into_stream_plan(self) -> StreamPlan {
        StreamPlan {
            assignments: self.per_child,
            est_load: self.est_load,
        }
    }

    /// Collapse a one-node plan into the historical [`ClusterPlan`]
    /// (dropping the nested per-device stream plans and the spill list).
    pub fn into_cluster_plan(self) -> ClusterPlan {
        ClusterPlan {
            per_device: self.per_child,
            est_load: self.est_load,
            device_of: self.child_of,
        }
    }

    /// Largest estimated completion time across children (each child's
    /// accumulated load over its parallel width) — the planner's makespan
    /// prediction at this level.
    pub fn est_makespan(&self, topo: &Topology) -> f64 {
        match topo {
            Topology::Node { children, .. } => self
                .est_load
                .iter()
                .zip(children)
                .filter(|(_, c)| c.is_usable())
                .map(|(l, c)| l / c.weight().max(1.0))
                .fold(0.0f64, f64::max),
            _ => self.est_load.iter().copied().fold(0.0f64, f64::max),
        }
    }
}

/// Plan a batch over a [`Topology`] with the analytic
/// [`Topology::analytic_seconds`] pricing (see [`plan_topology_by`]).
pub fn plan_topology(
    costs: &[CostEstimate],
    topo: &Topology,
) -> Result<TopoPlan, ClusterPlanError> {
    plan_topology_by(costs, topo, |c, path| topo.analytic_seconds(c, path))
}

/// Plan a batch over a [`Topology`] with caller-supplied pricing — **the**
/// planner behind every historical entry point. `seconds_of(cost, path)`
/// returns the subdomain's single-stream seconds at the vertex reached by
/// the child-index `path` from the root (e.g. `[d]` is device `d` of a
/// single-node pool — the historical `seconds_of(cost, d)`).
///
/// Each level reproduces the historical semantics exactly:
///
/// - a [`Topology::Node`] partitions longest-first under the worst-case
///   child (ties by index), placing each subdomain on the admissible child
///   with the lowest estimated completion time (accumulated load over
///   [`Topology::weight`], ties by child index); inadmissible-everywhere
///   subdomains spill; a usable-child-free vertex with a non-empty batch is
///   [`ClusterPlanError::NoDevices`]. Placement into a child behind an
///   [`Interconnect`] prices `link.seconds(exchange_bytes)` **plus** the
///   cheapest admissible placement inside — communication is a first-class
///   cost, not an afterthought;
/// - a [`Topology::Streams`] leaf (and the lane level of every
///   [`Topology::Device`]) assigns under [`StreamPolicy`] with the
///   historical comparators, panicking on `0` lanes with a non-empty batch.
pub fn plan_topology_by(
    costs: &[CostEstimate],
    topo: &Topology,
    seconds_of: impl Fn(&CostEstimate, &[usize]) -> f64,
) -> Result<TopoPlan, ClusterPlanError> {
    let mut path = Vec::new();
    plan_vertex(costs, topo, &mut path, &seconds_of)
}

/// Recursive planner worker: plans `costs` at `topo`, with `path` holding
/// the child indices from the root to `topo`.
fn plan_vertex(
    costs: &[CostEstimate],
    topo: &Topology,
    path: &mut Vec<usize>,
    seconds_of: &impl Fn(&CostEstimate, &[usize]) -> f64,
) -> Result<TopoPlan, ClusterPlanError> {
    match topo {
        Topology::Streams { n, policy } => Ok(plan_lanes(costs, *n, *policy, path, seconds_of)),
        Topology::Device { slot, policy } => {
            Ok(plan_lanes(costs, slot.n_streams, *policy, path, seconds_of))
        }
        Topology::Node { children, link: _ } => plan_group(costs, children, path, seconds_of),
    }
}

/// Lane-level planning: the historical [`plan`] loops verbatim, with the
/// ordering key supplied by `seconds_of` at the current vertex.
fn plan_lanes(
    costs: &[CostEstimate],
    n_lanes: usize,
    policy: StreamPolicy,
    path: &[usize],
    seconds_of: &impl Fn(&CostEstimate, &[usize]) -> f64,
) -> TopoPlan {
    if costs.is_empty() {
        return TopoPlan {
            per_child: vec![Vec::new(); n_lanes],
            est_load: vec![0.0; n_lanes],
            child_of: Vec::new(),
            spilled: Vec::new(),
            children: Vec::new(),
        };
    }
    assert!(
        n_lanes > 0,
        "cannot plan a batch of {} subdomains onto 0 streams",
        costs.len()
    );
    let secs: Vec<f64> = costs.iter().map(|c| seconds_of(c, path)).collect();
    let mut per_child = vec![Vec::new(); n_lanes];
    let mut est_load = vec![0.0f64; n_lanes];
    let mut child_of = vec![usize::MAX; costs.len()];
    match policy {
        StreamPolicy::RoundRobin => {
            for (k, c) in costs.iter().enumerate() {
                per_child[k % n_lanes].push(c.index);
                est_load[k % n_lanes] += secs[k];
                child_of[k] = k % n_lanes;
            }
        }
        StreamPolicy::LptLeastLoaded => {
            let mut order: Vec<usize> = (0..costs.len()).collect();
            // longest first; ties broken by index for determinism
            order.sort_by(|&a, &b| {
                secs[b]
                    .partial_cmp(&secs[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(costs[a].index.cmp(&costs[b].index))
            });
            for k in order {
                let s = (0..n_lanes)
                    .min_by(|&a, &b| {
                        est_load[a]
                            .partial_cmp(&est_load[b])
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.cmp(&b))
                    })
                    .expect("n_lanes >= 1");
                per_child[s].push(costs[k].index);
                est_load[s] += secs[k];
                child_of[k] = s;
            }
        }
    }
    TopoPlan {
        per_child,
        est_load,
        child_of,
        spilled: Vec::new(),
        children: Vec::new(),
    }
}

/// Group-level planning: the historical [`plan_cluster_spill_by`] loops
/// verbatim over arbitrary child vertices, followed by recursion into each
/// child with its assigned subset.
fn plan_group(
    costs: &[CostEstimate],
    children: &[Topology],
    path: &mut Vec<usize>,
    seconds_of: &impl Fn(&CostEstimate, &[usize]) -> f64,
) -> Result<TopoPlan, ClusterPlanError> {
    if costs.is_empty() {
        let sub = children
            .iter()
            .enumerate()
            .map(|(d, child)| {
                path.push(d);
                let p = plan_vertex(&[], child, path, seconds_of);
                path.pop();
                p.expect("planning an empty batch cannot fail")
            })
            .collect();
        return Ok(TopoPlan {
            per_child: vec![Vec::new(); children.len()],
            est_load: vec![0.0; children.len()],
            child_of: Vec::new(),
            spilled: Vec::new(),
            children: sub,
        });
    }
    // a child without execution capacity (a drained card, an empty node) is
    // not a partition candidate
    if !children.iter().any(|c| c.is_usable()) {
        return Err(ClusterPlanError::NoDevices);
    }
    // per-child seconds of every subdomain, priced at that child's vertex
    let seconds: Vec<Vec<f64>> = costs
        .iter()
        .map(|c| {
            (0..children.len())
                .map(|d| vertex_price(c, &children[d], d, path, seconds_of))
                .collect()
        })
        .collect();
    // longest-first under the worst-case child (standard heuristic ordering
    // for unrelated machines); ties broken by index for determinism
    let worst: Vec<f64> = seconds
        .iter()
        .map(|s| s.iter().copied().fold(0.0f64, f64::max))
        .collect();
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| {
        worst[b]
            .partial_cmp(&worst[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(costs[a].index.cmp(&costs[b].index))
    });

    let weight: Vec<f64> = children.iter().map(|c| c.weight()).collect();
    let mut per_child = vec![Vec::new(); children.len()];
    let mut per_child_pos: Vec<Vec<usize>> = vec![Vec::new(); children.len()];
    let mut est_load = vec![0.0f64; children.len()];
    let mut child_of = vec![usize::MAX; costs.len()];
    let mut spilled = Vec::new();
    for k in order {
        let best = (0..children.len())
            .filter(|&d| children[d].admits(costs[k].temp_bytes))
            .min_by(|&a, &b| {
                let fa = (est_load[a] + seconds[k][a]) / weight[a];
                let fb = (est_load[b] + seconds[k][b]) / weight[b];
                fa.partial_cmp(&fb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
        let Some(d) = best else {
            spilled.push(costs[k].index);
            continue;
        };
        per_child[d].push(costs[k].index);
        per_child_pos[d].push(k);
        est_load[d] += seconds[k][d];
        child_of[k] = d;
    }
    spilled.sort_unstable();
    // recurse: plan each child's subset one level down, placement order
    let sub = children
        .iter()
        .enumerate()
        .map(|(d, child)| {
            let subset: Vec<CostEstimate> =
                per_child_pos[d].iter().map(|&k| costs[k].clone()).collect();
            path.push(d);
            let p = plan_vertex(&subset, child, path, seconds_of);
            path.pop();
            p.expect("an admitted subset plans on its own child")
        })
        .collect();
    Ok(TopoPlan {
        per_child,
        est_load,
        child_of,
        spilled,
        children: sub,
    })
}

/// Single-stream price of placing `cost` below child `d`: the leaf pricing
/// at device/lane vertices, and — behind a node boundary — the interconnect
/// transfer of the subdomain's boundary bytes **plus** the cheapest
/// admissible placement inside (infinite when nothing inside admits it).
fn vertex_price(
    cost: &CostEstimate,
    child: &Topology,
    d: usize,
    path: &mut Vec<usize>,
    seconds_of: &impl Fn(&CostEstimate, &[usize]) -> f64,
) -> f64 {
    path.push(d);
    let s = match child {
        Topology::Streams { .. } | Topology::Device { .. } => seconds_of(cost, path),
        Topology::Node { children, link } => {
            let wire = link.map_or(0.0, |l| l.seconds(cost.exchange_bytes));
            let best = children
                .iter()
                .enumerate()
                .filter(|(_, c)| c.admits(cost.temp_bytes))
                .map(|(j, c)| vertex_price(cost, c, j, path, seconds_of))
                .fold(f64::INFINITY, f64::min);
            wire + best
        }
    };
    path.pop();
    s
}

/// How one subdomain's dual operator is realized (the hybrid decision).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Formulation {
    /// Dense `F̃ᵢ` assembled on a pool device (scheduled/cluster path),
    /// applied by device GEMV.
    ExplicitGpu,
    /// Dense `F̃ᵢ` assembled and applied on the host.
    ExplicitCpu,
    /// No assembly; every application runs the Eq. 11 solve pipeline on the
    /// host.
    Implicit,
}

/// Collapse override of the hybrid decision (diagnostics and the
/// all-explicit / all-implicit comparison baselines of the `hybrid` bench).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum HybridForce {
    /// Per-subdomain cost minimization (the real planner).
    #[default]
    Auto,
    /// Force an explicit formulation everywhere; subdomains whose
    /// temporaries fit no device arena **fail over** to explicit-CPU (or,
    /// when explicit-CPU is disallowed, to implicit — never an error).
    AllExplicit,
    /// Force the implicit formulation everywhere.
    AllImplicit,
}

/// Inputs of [`plan_hybrid`] beyond the per-subdomain estimates.
///
/// Construct with [`Default`] and the `with_*` setters (the struct is
/// `#[non_exhaustive]`: the decision layer is expected to grow knobs):
///
/// ```
/// use sc_core::{HybridForce, HybridPlanOptions};
/// let opts = HybridPlanOptions::default()
///     .with_iters(120.0)
///     .with_allow_explicit_cpu(false)
///     .with_force(HybridForce::Auto);
/// assert_eq!(opts.iters, 120.0);
/// ```
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct HybridPlanOptions {
    /// Expected PCPG iteration count: how many times each subdomain's
    /// operator will be applied. `0.0` makes assembly pure overhead
    /// (collapses to all-implicit); `f64::INFINITY` makes apply cost the
    /// only criterion (collapses to all-explicit).
    pub iters: f64,
    /// Spec pricing host-side work (explicit-CPU assembly/apply, implicit
    /// applies). Defaults to [`DeviceSpec::host`].
    pub host: DeviceSpec,
    /// Measured microkernel rates pricing host-side work per kernel family
    /// instead of through the single-rate `host` spec: explicit-CPU assembly
    /// via [`MicrokernelRates::assembly_seconds`], applies via
    /// [`MicrokernelRates::explicit_apply_seconds`] /
    /// [`MicrokernelRates::implicit_apply_seconds`]. `None` (the default)
    /// keeps the historical spec-based pricing; set by
    /// [`with_calibrated_host`](Self::with_calibrated_host).
    ///
    /// [`MicrokernelRates::assembly_seconds`]: crate::calibrate::MicrokernelRates::assembly_seconds
    /// [`MicrokernelRates::explicit_apply_seconds`]: crate::calibrate::MicrokernelRates::explicit_apply_seconds
    /// [`MicrokernelRates::implicit_apply_seconds`]: crate::calibrate::MicrokernelRates::implicit_apply_seconds
    pub host_rates: Option<crate::calibrate::MicrokernelRates>,
    /// Whether explicit-CPU is in the candidate set (it is the fail-over
    /// for arena-spilled subdomains when the iteration count is high).
    pub allow_explicit_cpu: bool,
    /// Collapse override.
    pub force: HybridForce,
}

impl Default for HybridPlanOptions {
    fn default() -> Self {
        HybridPlanOptions {
            iters: 50.0,
            host: DeviceSpec::host(),
            host_rates: None,
            allow_explicit_cpu: true,
            force: HybridForce::Auto,
        }
    }
}

impl HybridPlanOptions {
    /// Set the expected PCPG iteration count.
    pub fn with_iters(mut self, iters: f64) -> Self {
        self.iters = iters;
        self
    }

    /// Set the spec pricing host-side work.
    pub fn with_host(mut self, host: DeviceSpec) -> Self {
        self.host = host;
        self
    }

    /// Price host-side work with measured microkernel rates instead of the
    /// nominal [`DeviceSpec::host`] constants (see
    /// [`MicrokernelRates`](crate::calibrate::MicrokernelRates): typically
    /// built by `MicrokernelRates::probe()`). The nominal host claims
    /// server-class throughput; on slower machines that skews the hybrid
    /// decision toward explicit-CPU, and calibration closes the
    /// predicted-vs-realized gap the `kernels` bench bin gates on.
    ///
    /// Beyond folding the rates into the host spec, this also stores the
    /// rates themselves ([`host_rates`](Self::host_rates)) so `plan_hybrid`
    /// prices the assembly *and apply* paths per kernel family: GEMV at
    /// measured stream bandwidth, sparse trisolves at the measured
    /// latency-bound rate.
    pub fn with_calibrated_host(self, rates: &crate::calibrate::MicrokernelRates) -> Self {
        self.with_host(rates.host_spec()).with_host_rates(*rates)
    }

    /// Set measured per-family host rates (see
    /// [`host_rates`](Self::host_rates)) without touching the host spec.
    pub fn with_host_rates(mut self, rates: crate::calibrate::MicrokernelRates) -> Self {
        self.host_rates = Some(rates);
        self
    }

    /// Include or exclude explicit-CPU from the candidate set.
    pub fn with_allow_explicit_cpu(mut self, allow: bool) -> Self {
        self.allow_explicit_cpu = allow;
        self
    }

    /// Set the collapse override.
    pub fn with_force(mut self, force: HybridForce) -> Self {
        self.force = force;
        self
    }
}

/// One subdomain's hybrid decision with its predicted costs.
#[derive(Clone, Debug)]
pub struct HybridChoice {
    /// Position of the subdomain in the input batch.
    pub index: usize,
    /// Chosen formulation.
    pub formulation: Formulation,
    /// For [`Formulation::ExplicitGpu`]: the pool device the analytic model
    /// prefers. A hint only — the cluster planner re-partitions the explicit
    /// share under the recorded kernel durations and may place differently.
    pub device_hint: Option<usize>,
    /// Predicted one-time assembly seconds of the chosen formulation
    /// (0 for implicit).
    pub assembly_seconds: f64,
    /// Predicted per-iteration apply seconds of the chosen formulation.
    pub apply_seconds: f64,
    /// `assembly_seconds + iters × apply_seconds` (infinite when
    /// `iters = ∞`).
    pub total_seconds: f64,
    /// True when the subdomain's temporaries fit **no** device arena: the
    /// explicit-GPU formulation was never a candidate (the recoverable
    /// [`ClusterPlanError::Spilled`] condition).
    pub spilled: bool,
}

/// The per-subdomain explicit-vs-implicit plan produced by [`plan_hybrid`].
#[derive(Clone, Debug)]
pub struct HybridPlan {
    /// One decision per subdomain, batch order.
    pub choices: Vec<HybridChoice>,
    /// The expected iteration count the plan was made for.
    pub iters: f64,
    /// Indices whose temporaries fit no device arena, ascending (they were
    /// decided between explicit-CPU and implicit only).
    pub spilled: Vec<usize>,
}

impl HybridPlan {
    /// Batch indices assigned the given formulation, ascending.
    pub fn indices_of(&self, f: Formulation) -> Vec<usize> {
        self.choices
            .iter()
            .filter(|c| c.formulation == f)
            .map(|c| c.index)
            .collect()
    }

    /// Number of subdomains assigned the given formulation.
    pub fn count_of(&self, f: Formulation) -> usize {
        self.choices.iter().filter(|c| c.formulation == f).count()
    }

    /// Predicted cost-to-solution at `iters` iterations: the sum over
    /// subdomains of `assembly + iters × apply` — the sequential-equivalent
    /// work the node performs, the comparison metric of the `hybrid` bench
    /// gate (device-level overlap shrinks all strategies alike).
    pub fn cost_at(&self, iters: f64) -> f64 {
        self.choices
            .iter()
            .map(|c| c.assembly_seconds + iters * c.apply_seconds)
            .sum()
    }

    /// [`HybridPlan::cost_at`] the plan's own expected iteration count.
    pub fn total_cost(&self) -> f64 {
        self.cost_at(self.iters)
    }
}

/// Decide, **per subdomain**, whichever of {explicit-GPU, explicit-CPU,
/// implicit} minimizes `assembly + iters × apply`, subject to the device
/// arena capacities (paper-style Table-1 auto-selection extended from
/// "which kernel config" to "which operator formulation"):
///
/// - explicit-GPU assembly/apply are priced per pool device
///   ([`CostEstimate::seconds_on`] / [`ApplyEstimate::explicit_seconds_on`])
///   and only devices whose arena holds the subdomain's peak temporaries
///   are candidates — an oversized subdomain **spills** to the remaining
///   formulations instead of erroring;
/// - explicit-CPU and implicit are priced under `opts.host`;
/// - `iters = 0` collapses to all-implicit (assembly is pure overhead),
///   `iters = ∞` to all-explicit (ordering by apply cost alone, assembly
///   as the tie-break).
///
/// Ties prefer implicit (no assembly risk), then explicit-GPU.
pub fn plan_hybrid(
    costs: &[CostEstimate],
    applies: &[ApplyEstimate],
    devices: &[DeviceSlot],
    opts: &HybridPlanOptions,
) -> HybridPlan {
    assert_eq!(
        costs.len(),
        applies.len(),
        "one ApplyEstimate per CostEstimate required"
    );
    assert!(
        opts.iters >= 0.0 && !opts.iters.is_nan(),
        "expected iteration count must be a non-negative number, got {}",
        opts.iters
    );
    let mut choices = Vec::with_capacity(costs.len());
    let mut spilled = Vec::new();
    for (c, a) in costs.iter().zip(applies) {
        debug_assert_eq!(c.index, a.index, "estimate slices must align");
        // candidate list: (formulation, device_hint, assembly_s, apply_s)
        let mut candidates: Vec<(Formulation, Option<usize>, f64, f64)> = Vec::with_capacity(3);
        let gpu_best = (0..devices.len())
            .filter(|&d| devices[d].admits(c.temp_bytes))
            .map(|d| {
                (
                    d,
                    c.seconds_on(&devices[d].spec),
                    a.explicit_seconds_on(&devices[d].spec),
                )
            })
            .min_by(|x, y| {
                total_key(x.1, x.2, opts.iters)
                    .partial_cmp(&total_key(y.1, y.2, opts.iters))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(x.0.cmp(&y.0))
            });
        let is_spilled = gpu_best.is_none();
        if let Some((d, asm, app)) = gpu_best {
            candidates.push((Formulation::ExplicitGpu, Some(d), asm, app));
        } else {
            spilled.push(c.index);
        }
        if opts.allow_explicit_cpu {
            candidates.push((
                Formulation::ExplicitCpu,
                None,
                match &opts.host_rates {
                    Some(r) => r.assembly_seconds(c),
                    None => c.seconds_on(&opts.host),
                },
                match &opts.host_rates {
                    Some(r) => r.explicit_apply_seconds(a),
                    None => a.explicit_seconds_on(&opts.host),
                },
            ));
        }
        candidates.push((
            Formulation::Implicit,
            None,
            0.0,
            match &opts.host_rates {
                Some(r) => r.implicit_apply_seconds(a),
                None => a.implicit_seconds_on(&opts.host),
            },
        ));

        match opts.force {
            HybridForce::Auto => {}
            HybridForce::AllExplicit => {
                // keep the explicit candidates; fall back to implicit only
                // when nothing explicit exists at all
                if candidates.iter().any(|x| x.0 != Formulation::Implicit) {
                    candidates.retain(|x| x.0 != Formulation::Implicit);
                }
            }
            HybridForce::AllImplicit => {
                candidates.retain(|x| x.0 == Formulation::Implicit);
            }
        }

        // preference on exact ties: implicit (no assembly to lose), then
        // explicit-GPU, then explicit-CPU
        let pref = |f: Formulation| match f {
            Formulation::Implicit => 0u8,
            Formulation::ExplicitGpu => 1,
            Formulation::ExplicitCpu => 2,
        };
        let (formulation, device_hint, assembly_seconds, apply_seconds) = candidates
            .into_iter()
            .min_by(|x, y| {
                total_key(x.2, x.3, opts.iters)
                    .partial_cmp(&total_key(y.2, y.3, opts.iters))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(pref(x.0).cmp(&pref(y.0)))
            })
            .expect("the implicit formulation is always a candidate");
        choices.push(HybridChoice {
            index: c.index,
            formulation,
            device_hint,
            assembly_seconds,
            apply_seconds,
            total_seconds: assembly_seconds + opts.iters * apply_seconds,
            spilled: is_spilled,
        });
    }
    spilled.sort_unstable();
    HybridPlan {
        choices,
        iters: opts.iters,
        spilled,
    }
}

/// Ordering key of `assembly + iters × apply`: at `iters = ∞` every total
/// is infinite, so the comparison degenerates — order by apply cost alone
/// with assembly as an infinitesimal tie-break instead.
fn total_key(assembly: f64, apply: f64, iters: f64) -> (f64, f64) {
    if iters.is_infinite() {
        (apply, assembly)
    } else {
        (assembly + iters * apply, 0.0)
    }
}

/// One subdomain's placement in the executed schedule (per-stream timeline
/// entry of the batch report).
#[derive(Clone, Copy, Debug)]
pub struct ScheduledSpan {
    /// Subdomain index in the input batch.
    pub index: usize,
    /// Stream it ran on.
    pub stream: usize,
    /// Simulated time its temporary-arena reservation was granted (equals
    /// `span.start` up to stream availability; strictly earlier stalls mean
    /// the stream waited on the arena — the "wait" configuration).
    pub admitted_at: f64,
    /// Simulated execution interval (first kernel start .. last kernel end).
    pub span: SimSpan,
    /// Bytes reserved in the temporary arena for the interval.
    pub temp_bytes: usize,
}

/// Simulated-time admission against the temporary arena: reservations are
/// intervals `[start, release)` of bytes; [`ArenaSim::admit`] returns the
/// earliest instant at which a new reservation can *permanently* fit — i.e.
/// after which committed usage never again exceeds `capacity − bytes`. The
/// conservative "permanently" guard is what keeps admission safe even though
/// a reservation's release time is only known after its kernels are
/// replayed.
pub struct ArenaSim {
    capacity: usize,
    /// Committed reservations as `(start, release, bytes)`.
    live: Vec<(f64, f64, usize)>,
}

impl ArenaSim {
    /// Arena of `capacity` bytes (use the device's
    /// [`TempPool::capacity`](sc_gpu::TempPool::capacity)).
    pub fn new(capacity: usize) -> Self {
        ArenaSim {
            capacity,
            live: Vec::new(),
        }
    }

    /// Arena capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Earliest admission instant `t ≥ not_before` for a reservation of
    /// `bytes`, against the committed reservation set.
    ///
    /// # Panics
    ///
    /// When `bytes > capacity` — the request can never be satisfied,
    /// mirroring [`TempPool::alloc`](sc_gpu::TempPool::alloc)'s contract.
    pub fn admit(&self, bytes: usize, not_before: f64) -> f64 {
        self.try_admit(bytes, not_before)
            .expect("admission blocked only by open (in-flight) reservations")
    }

    /// [`ArenaSim::admit`], but `None` when admission is blocked by an
    /// **open** reservation (one whose release time is not yet known — an
    /// in-flight subdomain): the caller must replay other streams until the
    /// holder closes.
    pub fn try_admit(&self, bytes: usize, not_before: f64) -> Option<f64> {
        assert!(
            bytes <= self.capacity,
            "temporary reservation of {bytes} B exceeds the device arena \
             capacity {} B — the subdomain cannot be scheduled on this device",
            self.capacity
        );
        let budget = self.capacity as isize - bytes as isize;
        // sweep usage over the committed breakpoints; admission must wait
        // past the *last* segment whose usage exceeds the remaining budget
        let mut events: Vec<(f64, isize)> = Vec::with_capacity(2 * self.live.len());
        for &(start, release, b) in &self.live {
            events.push((start, b as isize));
            events.push((release, -(b as isize)));
        }
        events.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                // releases before acquisitions at the same instant
                .then(a.1.cmp(&b.1))
        });
        let mut t = not_before;
        let mut usage = 0isize;
        for (w, &(at, delta)) in events.iter().enumerate() {
            usage += delta;
            // usage holds on [at, seg_end)
            let seg_end = events.get(w + 1).map(|e| e.0).unwrap_or(at);
            if usage > budget && seg_end > at {
                // cannot be resident during an over-budget segment: wait
                // until it ends
                t = t.max(seg_end);
            }
        }
        debug_assert_eq!(usage, 0, "reservation events must balance");
        t.is_finite().then_some(t)
    }

    /// Commit a reservation of `bytes` over `[start, release)`.
    pub fn reserve(&mut self, start: f64, release: f64, bytes: usize) {
        debug_assert!(release >= start, "reservation released before it starts");
        self.live.push((start, release.max(start), bytes));
    }

    /// Open a reservation whose release time is not yet known (an in-flight
    /// subdomain): it holds `bytes` from `start` indefinitely until
    /// [`ArenaSim::close`] stamps the release. Returns a handle.
    pub fn open(&mut self, start: f64, bytes: usize) -> usize {
        self.live.push((start, f64::INFINITY, bytes));
        self.live.len() - 1
    }

    /// Stamp the release time of an open reservation.
    pub fn close(&mut self, handle: usize, release: f64) {
        debug_assert!(
            self.live[handle].1.is_infinite(),
            "closing an already-closed reservation"
        );
        self.live[handle].1 = release.max(self.live[handle].0);
    }

    /// Peak simultaneous committed bytes over all reservations.
    pub fn high_water(&self) -> usize {
        let mut events: Vec<(f64, isize)> = Vec::with_capacity(2 * self.live.len());
        for &(start, release, b) in &self.live {
            events.push((start, b as isize));
            events.push((release, -(b as isize)));
        }
        events.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                // releases before acquisitions at the same instant
                .then(a.1.cmp(&b.1))
        });
        let mut usage = 0isize;
        let mut peak = 0isize;
        for (_, delta) in events {
            usage += delta;
            peak = peak.max(usage);
        }
        peak.max(0) as usize
    }
}

#[cfg(test)]
mod tests {
    // the historical planner entry points stay under test until removal
    #![allow(deprecated)]
    use super::*;
    use crate::assemble::ScConfig;
    use sc_sparse::Coo;

    fn bt_with_pivots(n: usize, pivots: &[usize]) -> Csc {
        let mut c = Coo::new(n, pivots.len());
        for (j, &p) in pivots.iter().enumerate() {
            if p < n {
                c.push(p, j, 1.0);
            }
        }
        c.to_csc()
    }

    fn diag_factor(n: usize) -> Csc {
        let mut c = Coo::new(n, n);
        for j in 0..n {
            c.push(j, j, 2.0);
        }
        c.to_csc()
    }

    fn est(n: usize, pivots: &[usize]) -> CostEstimate {
        let l = diag_factor(n);
        let bt = bt_with_pivots(n, pivots);
        let params = ScConfig::optimized(true, false).resolve(true, &l, &bt);
        estimate_cost(&DeviceSpec::a100(), &l, &bt, &params, 0)
    }

    #[test]
    fn cost_grows_with_size_and_pivot_depth() {
        let small = est(50, &[40, 45]);
        let big = est(500, &[10, 20]);
        assert!(big.seconds > small.seconds);
        assert!(big.trsm_flops > small.trsm_flops);
        // deep pivots (little work below) must be cheaper than shallow ones
        let shallow = est(100, &[0, 0, 0]);
        let deep = est(100, &[90, 90, 90]);
        assert!(shallow.trsm_flops > deep.trsm_flops);
        assert!(shallow.syrk_flops > deep.syrk_flops);
    }

    #[test]
    fn empty_subdomain_costs_only_transfer() {
        let e = est(10, &[]);
        assert_eq!(e.n_lambda, 0);
        assert_eq!(e.trsm_flops, 0.0);
        assert_eq!(e.syrk_flops, 0.0);
        assert!(e.transfer_bytes > 0.0, "the factor still travels");
    }

    #[test]
    fn f32_estimate_halves_value_byte_terms() {
        use crate::assemble::ScParams;
        use crate::syrk::SyrkVariant;
        use crate::trsm::{FactorStorage, TrsmVariant};
        let l = diag_factor(64);
        let bt = bt_with_pivots(64, &[0, 5, 10, 40]);
        // dense factor storage: the arena holds matrix values only, so the
        // exact-halving claim is precision arithmetic, not layout luck
        let params = ScParams {
            trsm: TrsmVariant::Plain,
            syrk: SyrkVariant::Plain,
            factor_storage: FactorStorage::Dense,
            stepped_permutation: true,
        };
        let spec = DeviceSpec::a100();
        let e64 = estimate_cost_of::<f64>(&spec, &l, &bt, &params, 0);
        let e32 = estimate_cost_of::<f32>(&spec, &l.cast::<f32>(), &bt.cast::<f32>(), &params, 0);
        // H2D: index traffic stays 8 bytes per entry, values drop 8 → 4
        let nnz = (l.nnz() + bt.nnz()) as f64;
        assert_eq!(e64.transfer_bytes, 16.0 * nnz);
        assert_eq!(e32.transfer_bytes, 12.0 * nnz);
        // arena footprint halves exactly
        assert_eq!(e32.temp_bytes * 2, e64.temp_bytes);
        // FLOP terms are precision-independent
        assert_eq!(e32.trsm_flops, e64.trsm_flops);
        assert_eq!(e32.syrk_flops, e64.syrk_flops);
        // the unsuffixed wrapper pins f64 bitwise
        let legacy = estimate_cost(&spec, &l, &bt, &params, 0);
        assert_eq!(legacy.transfer_bytes, e64.transfer_bytes);
        assert_eq!(legacy.temp_bytes, e64.temp_bytes);
        assert_eq!(legacy.seconds, e64.seconds);
    }

    #[test]
    fn f32_apply_estimate_halves_gemv_bytes() {
        let l = diag_factor(32);
        let bt = bt_with_pivots(32, &[0, 8, 16]);
        let a64 = estimate_apply_of::<f64>(&l, &bt, 0);
        let a32 = estimate_apply_of::<f32>(&l.cast::<f32>(), &bt.cast::<f32>(), 0);
        let bytes = |ks: &[sc_gpu::KernelCost]| ks.iter().map(|k| k.bytes).sum::<f64>();
        let flops = |ks: &[sc_gpu::KernelCost]| ks.iter().map(|k| k.flops).sum::<f64>();
        assert_eq!(
            bytes(&a32.explicit) * 2.0,
            bytes(&a64.explicit),
            "explicit GEMV traffic is pure values"
        );
        assert_eq!(flops(&a32.explicit), flops(&a64.explicit));
        let legacy = estimate_apply(&l, &bt, 0);
        assert_eq!(bytes(&legacy.explicit), bytes(&a64.explicit));
        assert_eq!(bytes(&legacy.implicit), bytes(&a64.implicit));
    }

    #[test]
    fn lpt_balances_a_skewed_batch_better_than_round_robin() {
        // sizes arranged so round-robin piles the heavy items onto stream 0
        let costs: Vec<CostEstimate> = (0..8)
            .map(|i| {
                let mut c = est(40, &[0; 12]);
                c.index = i;
                c.seconds = if i.is_multiple_of(2) { 8.0 } else { 1.0 };
                c
            })
            .collect();
        let rr = plan(&costs, 2, StreamPolicy::RoundRobin);
        let lpt = plan(&costs, 2, StreamPolicy::LptLeastLoaded);
        let makespan = |p: &StreamPlan| p.est_load.iter().copied().fold(0.0f64, f64::max);
        assert!(
            makespan(&lpt) < makespan(&rr),
            "LPT {:?} must beat round-robin {:?}",
            lpt.est_load,
            rr.est_load
        );
        // every subdomain appears exactly once
        let mut seen: Vec<usize> = lpt.assignments.concat();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn plan_handles_degenerate_shapes() {
        let p = plan(&[], 4, StreamPolicy::LptLeastLoaded);
        assert!(p.assignments.iter().all(|a| a.is_empty()));
        let one = vec![est(10, &[2])];
        let p = plan(&one, 1, StreamPolicy::RoundRobin);
        assert_eq!(p.assignments, vec![vec![0]]);
    }

    fn slot(spec: DeviceSpec, arena: usize, n_streams: usize) -> DeviceSlot {
        DeviceSlot {
            spec,
            arena_capacity: arena,
            n_streams,
        }
    }

    #[test]
    fn plan_rejects_zero_streams_for_nonempty_batches_only() {
        let empty = plan(&[], 0, StreamPolicy::LptLeastLoaded);
        assert!(empty.assignments.is_empty());
        assert!(empty.est_load.is_empty());
        let one = vec![est(10, &[2])];
        let err = std::panic::catch_unwind(|| plan(&one, 0, StreamPolicy::RoundRobin)).unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(msg.contains("0 streams"), "descriptive error, got: {msg}");
    }

    #[test]
    fn cluster_plan_balances_across_uniform_devices() {
        let costs: Vec<CostEstimate> = (0..8)
            .map(|i| {
                let mut c = est(40, &[0; 12]);
                c.index = i;
                c.trsm_flops = if i.is_multiple_of(2) { 8.0e9 } else { 1.0e9 };
                c.syrk_flops = 0.0;
                c.transfer_bytes = 0.0;
                c
            })
            .collect();
        let devs = vec![
            slot(DeviceSpec::a100(), usize::MAX, 2),
            slot(DeviceSpec::a100(), usize::MAX, 2),
        ];
        let p = plan_cluster(&costs, &devs).unwrap();
        // every subdomain placed exactly once
        let mut seen: Vec<usize> = p.per_device.concat();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
        assert_eq!(p.device_of.len(), 8);
        // LPT must split the 4 heavy items evenly
        let heavy_per_dev: Vec<usize> = p
            .per_device
            .iter()
            .map(|idx| idx.iter().filter(|&&i| i.is_multiple_of(2)).count())
            .collect();
        assert_eq!(heavy_per_dev, vec![2, 2], "heavy items must spread");
        let spread = (p.est_load[0] - p.est_load[1]).abs();
        assert!(
            spread <= p.est_load[0].max(p.est_load[1]) * 0.5,
            "loads {:?} must be roughly balanced",
            p.est_load
        );
    }

    #[test]
    fn cluster_plan_respects_arena_admissibility() {
        // one subdomain too big for the small card: it must land on the big
        // one even though the big one is the slower device
        let mut big = est(400, &[0; 20]);
        big.index = 0;
        big.temp_bytes = 1 << 20;
        let mut small_a = est(40, &[0; 8]);
        small_a.index = 1;
        small_a.temp_bytes = 1 << 10;
        let mut small_b = small_a.clone();
        small_b.index = 2;
        let devs = vec![
            slot(DeviceSpec::tiny_test_device(), 2 << 20, 2), // big arena, slow
            slot(DeviceSpec::a100(), 16 << 10, 2),            // small arena, fast
        ];
        let p = plan_cluster(&[big, small_a, small_b], &devs).unwrap();
        assert_eq!(p.device_of[0], 0, "oversized subdomain must use device 0");
        assert!(p.per_device[0].contains(&0));
    }

    #[test]
    fn cluster_plan_prefers_the_faster_device_for_heavy_work() {
        let costs: Vec<CostEstimate> = (0..6)
            .map(|i| {
                let mut c = est(40, &[0; 12]);
                c.index = i;
                c.trsm_flops = 4.0e9;
                c.syrk_flops = 0.0;
                c.transfer_bytes = 0.0;
                c.temp_bytes = 1;
                c
            })
            .collect();
        let devs = vec![
            slot(DeviceSpec::h100(), usize::MAX, 2),
            slot(DeviceSpec::tiny_test_device(), usize::MAX, 2),
        ];
        let p = plan_cluster(&costs, &devs).unwrap();
        // the H100 is ~3000x faster than the tiny card: everything goes there
        assert!(
            p.per_device[0].len() > p.per_device[1].len(),
            "fast device must absorb most of the equal-cost work: {:?}",
            p.per_device
        );
    }

    #[test]
    fn cluster_plan_skips_zero_stream_devices() {
        let costs: Vec<CostEstimate> = (0..4)
            .map(|i| {
                let mut c = est(20, &[0; 6]);
                c.index = i;
                c
            })
            .collect();
        // a drained (0-stream) card next to a working one: everything must
        // land on the working card, never on the unusable one
        let devs = vec![
            slot(DeviceSpec::a100(), usize::MAX, 0),
            slot(DeviceSpec::a100(), usize::MAX, 2),
        ];
        let p = plan_cluster(&costs, &devs).unwrap();
        assert!(p.per_device[0].is_empty(), "0-stream device must stay idle");
        assert_eq!(p.per_device[1].len(), 4);
        assert!(p.device_of.iter().all(|&d| d == 1));
        // a pool of only 0-stream devices cannot run anything
        let dead = vec![slot(DeviceSpec::a100(), usize::MAX, 0)];
        assert_eq!(
            plan_cluster(&costs, &dead).unwrap_err(),
            ClusterPlanError::NoDevices
        );
    }

    #[test]
    fn cluster_plan_errors_are_descriptive() {
        let one = vec![est(10, &[2])];
        assert_eq!(
            plan_cluster(&one, &[]).unwrap_err(),
            ClusterPlanError::NoDevices
        );
        let empty = plan_cluster(&[], &[]).unwrap();
        assert!(empty.per_device.is_empty());
        assert!(empty.device_of.is_empty());

        let mut huge = est(10, &[2]);
        huge.temp_bytes = 1 << 30;
        let err = plan_cluster(&[huge], &[slot(DeviceSpec::a100(), 1 << 20, 2)]).unwrap_err();
        match &err {
            ClusterPlanError::Spilled { spilled, max_arena } => {
                assert_eq!(spilled, &vec![0]);
                assert_eq!(*max_arena, 1 << 20);
            }
            other => panic!("wrong error: {other}"),
        }
        assert!(err.to_string().contains("largest device arena"));
        assert!(
            err.to_string().contains("recoverable"),
            "the Spilled error must advertise the fallback: {err}"
        );
    }

    #[test]
    fn spill_plan_places_the_rest_and_reports_the_overflow() {
        // two small subdomains fit, the middle one fits nowhere: the plan
        // must carry the small ones and spill index 1 instead of erroring
        let mut a = est(20, &[0; 4]);
        a.index = 0;
        a.temp_bytes = 1 << 8;
        let mut big = est(200, &[0; 20]);
        big.index = 1;
        big.temp_bytes = 1 << 30;
        let mut b = a.clone();
        b.index = 2;
        let devs = vec![slot(DeviceSpec::a100(), 1 << 20, 2)];
        let (plan, spilled) = plan_cluster_spill(&[a, big, b], &devs).unwrap();
        assert_eq!(spilled, vec![1]);
        assert_eq!(plan.device_of[1], usize::MAX, "spilled entry unplaced");
        let mut placed: Vec<usize> = plan.per_device.concat();
        placed.sort_unstable();
        assert_eq!(placed, vec![0, 2]);
        // the strict planner surfaces the same condition as an error
        assert!(matches!(
            plan_cluster(
                &[est(10, &[2]), {
                    let mut h = est(10, &[2]);
                    h.index = 1;
                    h.temp_bytes = 1 << 30;
                    h
                }],
                &devs
            ),
            Err(ClusterPlanError::Spilled { .. })
        ));
    }

    fn apply_est(n: usize, pivots: &[usize]) -> ApplyEstimate {
        let l = diag_factor(n);
        let bt = bt_with_pivots(n, pivots);
        estimate_apply(&l, &bt, 0)
    }

    #[test]
    fn implicit_apply_scales_with_factor_not_interface() {
        let spec = DeviceSpec::host();
        // same interface, much bigger factor: implicit apply must grow,
        // explicit apply (GEMV over m × m) must not
        let small = apply_est(50, &[0, 1, 2]);
        let big = apply_est(5000, &[0, 1, 2]);
        assert!(big.implicit_seconds_on(&spec) > small.implicit_seconds_on(&spec));
        assert!(
            (big.explicit_seconds_on(&spec) - small.explicit_seconds_on(&spec)).abs() < 1e-12,
            "explicit apply depends only on n_lambda"
        );
        // four launches per implicit apply vs one for explicit
        assert_eq!(big.implicit.len(), 4);
        assert_eq!(big.explicit.len(), 1);
    }

    fn hybrid_inputs(shapes: &[(usize, usize)]) -> (Vec<CostEstimate>, Vec<ApplyEstimate>) {
        let mut costs = Vec::new();
        let mut applies = Vec::new();
        for (i, &(n, m)) in shapes.iter().enumerate() {
            let l = diag_factor(n);
            let pivots: Vec<usize> = (0..m).map(|j| j % n).collect();
            let bt = bt_with_pivots(n, &pivots);
            let params = ScConfig::optimized(true, false).resolve(true, &l, &bt);
            let mut c = estimate_cost(&DeviceSpec::a100(), &l, &bt, &params, i);
            c.index = i;
            let mut a = estimate_apply(&l, &bt, i);
            a.index = i;
            costs.push(c);
            applies.push(a);
        }
        (costs, applies)
    }

    #[test]
    fn hybrid_iteration_extremes_collapse_the_decision() {
        let (costs, applies) = hybrid_inputs(&[(200, 40), (400, 60), (100, 20)]);
        let devs = vec![slot(DeviceSpec::a100(), usize::MAX, 2)];
        let zero = plan_hybrid(
            &costs,
            &applies,
            &devs,
            &HybridPlanOptions {
                iters: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(
            zero.count_of(Formulation::Implicit),
            3,
            "iters→0 ⇒ implicit"
        );
        let inf = plan_hybrid(
            &costs,
            &applies,
            &devs,
            &HybridPlanOptions {
                iters: f64::INFINITY,
                ..Default::default()
            },
        );
        assert_eq!(
            inf.count_of(Formulation::Implicit),
            0,
            "iters→∞ ⇒ all-explicit: {:?}",
            inf.choices
        );
        // each subdomain decided exactly once
        assert_eq!(zero.choices.len(), 3);
        for (i, c) in inf.choices.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    /// Synthetic estimate pair with controlled regimes: pure-compute costs
    /// large enough that occupancy ramps are saturated, so the seconds are
    /// (almost exactly) flops over peak throughput.
    fn synth(
        index: usize,
        temp_bytes: usize,
        asm_flops: f64,
        expl_apply_flops: f64,
        impl_apply_flops: f64,
    ) -> (CostEstimate, ApplyEstimate) {
        let c = CostEstimate {
            index,
            n_dofs: 100,
            n_lambda: 10,
            trsm_flops: asm_flops,
            syrk_flops: 0.0,
            transfer_bytes: 0.0,
            temp_bytes,
            exchange_bytes: 0.0,
            seconds: 0.0,
        };
        let a = ApplyEstimate {
            index,
            n_lambda: 10,
            explicit: vec![KernelCost::compute(expl_apply_flops, 0.0)],
            implicit: vec![KernelCost::compute(impl_apply_flops, 0.0)],
        };
        (c, a)
    }

    #[test]
    fn hybrid_spills_oversized_subdomains_to_implicit() {
        // subdomain 0 fits the arena, subdomain 1 does not; implicit applies
        // cost 4x the explicit GEMV (the typical large-subdomain regime)
        let (c0, a0) = synth(0, 1 << 10, 1e9, 1e9, 4e9);
        let (c1, a1) = synth(1, 1 << 30, 1e12, 1e9, 4e9);
        let costs = vec![c0, c1];
        let applies = vec![a0, a1];
        let devs = vec![slot(DeviceSpec::a100(), 1 << 20, 2)];
        let opts = HybridPlanOptions {
            iters: 1e6, // explicit-favoring
            allow_explicit_cpu: false,
            ..Default::default()
        };
        let plan = plan_hybrid(&costs, &applies, &devs, &opts);
        assert_eq!(plan.spilled, vec![1]);
        assert_eq!(plan.choices[0].formulation, Formulation::ExplicitGpu);
        assert_eq!(plan.choices[0].device_hint, Some(0));
        assert_eq!(
            plan.choices[1].formulation,
            Formulation::Implicit,
            "oversized subdomain must fall back, not error"
        );
        assert!(plan.choices[1].spilled);
        assert_eq!(plan.choices[1].assembly_seconds, 0.0);
        // with explicit-CPU allowed, the high-iteration spill fails over to
        // the CPU-explicit formulation instead
        let with_cpu = plan_hybrid(
            &costs,
            &applies,
            &devs,
            &HybridPlanOptions {
                allow_explicit_cpu: true,
                ..opts
            },
        );
        assert_eq!(with_cpu.choices[1].formulation, Formulation::ExplicitCpu);
    }

    #[test]
    fn hybrid_force_overrides_follow_admissibility() {
        let (c0, a0) = synth(0, 1 << 10, 1e9, 1e9, 4e9);
        let (c1, a1) = synth(1, 1 << 30, 1e12, 1e9, 4e9);
        let costs = vec![c0, c1];
        let applies = vec![a0, a1];
        let devs = vec![slot(DeviceSpec::a100(), 1 << 20, 2)];
        let all_expl = plan_hybrid(
            &costs,
            &applies,
            &devs,
            &HybridPlanOptions {
                iters: 10.0,
                force: HybridForce::AllExplicit,
                ..Default::default()
            },
        );
        assert_eq!(all_expl.count_of(Formulation::Implicit), 0);
        assert_eq!(
            all_expl.choices[1].formulation,
            Formulation::ExplicitCpu,
            "forced explicit must fail over the spilled subdomain to the CPU"
        );
        let all_impl = plan_hybrid(
            &costs,
            &applies,
            &devs,
            &HybridPlanOptions {
                iters: 1e9,
                force: HybridForce::AllImplicit,
                ..Default::default()
            },
        );
        assert_eq!(all_impl.count_of(Formulation::Implicit), 2);
        // cost roll-up: forced plans can only be costlier than Auto
        let auto = plan_hybrid(
            &costs,
            &applies,
            &devs,
            &HybridPlanOptions {
                iters: 10.0,
                ..Default::default()
            },
        );
        assert!(auto.cost_at(10.0) <= all_expl.cost_at(10.0) + 1e-15);
        assert!(auto.cost_at(10.0) <= all_impl.cost_at(10.0) + 1e-15);
    }

    #[test]
    fn arena_admits_immediately_when_it_fits() {
        let a = ArenaSim::new(1000);
        assert_eq!(a.admit(1000, 0.5), 0.5);
    }

    #[test]
    fn arena_waits_for_release() {
        let mut a = ArenaSim::new(1000);
        a.reserve(0.0, 2.0, 800);
        // 300 B do not fit until t = 2.0
        assert_eq!(a.admit(300, 0.0), 2.0);
        // 200 B fit right away
        assert_eq!(a.admit(200, 0.0), 0.0);
    }

    #[test]
    fn arena_respects_future_reservations() {
        let mut a = ArenaSim::new(1000);
        // committed for the future: [5, 9)
        a.reserve(5.0, 9.0, 800);
        // a 300 B request at t=0 must NOT slot in before 5.0, because its
        // release time is unknown and could overlap [5, 9)
        assert_eq!(a.admit(300, 0.0), 9.0);
    }

    #[test]
    #[should_panic(expected = "exceeds the device arena")]
    fn arena_rejects_oversized_requests() {
        let a = ArenaSim::new(10);
        let _ = a.admit(11, 0.0);
    }

    #[test]
    fn arena_high_water_tracks_peak() {
        let mut a = ArenaSim::new(1000);
        a.reserve(0.0, 4.0, 400);
        a.reserve(1.0, 2.0, 300);
        a.reserve(2.0, 5.0, 300);
        assert_eq!(a.high_water(), 700);
    }

    // ---- hierarchical engine -------------------------------------------

    fn skewed_costs(n: usize) -> Vec<CostEstimate> {
        (0..n)
            .map(|i| {
                let mut c = est(40, &[0; 12]);
                c.index = i;
                c.seconds = if i.is_multiple_of(2) { 8.0 } else { 1.0 };
                c.temp_bytes = 1 << 10;
                c
            })
            .collect()
    }

    #[test]
    fn stream_leaf_plan_is_bitwise_the_deprecated_plan() {
        for policy in [StreamPolicy::LptLeastLoaded, StreamPolicy::RoundRobin] {
            let costs = skewed_costs(9);
            let legacy = plan(&costs, 3, policy);
            let topo = Topology::streams(3, policy);
            let hier = plan_topology(&costs, &topo).unwrap();
            assert!(hier.spilled.is_empty());
            assert!(hier.children.is_empty(), "a lane leaf has no sub-plans");
            let hier = hier.into_stream_plan();
            assert_eq!(hier.assignments, legacy.assignments);
            // bitwise: same placement in the same order sums identically
            assert_eq!(hier.est_load, legacy.est_load);
        }
    }

    #[test]
    fn flat_node_plan_is_bitwise_the_deprecated_cluster_planner() {
        let costs = skewed_costs(10);
        let devs = vec![
            slot(DeviceSpec::a100(), usize::MAX, 2),
            slot(DeviceSpec::h100(), usize::MAX, 4),
            slot(DeviceSpec::tiny_test_device(), usize::MAX, 1),
        ];
        let legacy = plan_cluster(&costs, &devs).unwrap();
        let topo = Topology::node(devs.iter().cloned().map(Topology::device).collect(), None);
        let hier = plan_topology(&costs, &topo).unwrap();
        assert!(hier.spilled.is_empty());
        assert_eq!(hier.children.len(), 3, "one sub-plan per device");
        for (d, child) in hier.children.iter().enumerate() {
            // the nested stream plan covers exactly the device's share
            let mut below: Vec<usize> = child.per_child.concat();
            below.sort_unstable();
            let mut share = hier.per_child[d].clone();
            share.sort_unstable();
            assert_eq!(below, share);
        }
        let hier = hier.into_cluster_plan();
        assert_eq!(hier.per_device, legacy.per_device);
        assert_eq!(hier.est_load, legacy.est_load);
        assert_eq!(hier.device_of, legacy.device_of);
    }

    #[test]
    fn three_level_plan_places_each_subdomain_on_exactly_one_leaf() {
        let costs = skewed_costs(12);
        let node = |n_dev: usize| {
            Topology::node(
                (0..n_dev)
                    .map(|_| Topology::device(slot(DeviceSpec::a100(), usize::MAX, 2)))
                    .collect(),
                Some(Interconnect::ideal()),
            )
        };
        let topo = Topology::node(vec![node(2), node(3)], None);
        let plan = plan_topology(&costs, &topo).unwrap();
        assert!(plan.spilled.is_empty());
        // level 1: every subdomain on exactly one node
        let mut seen: Vec<usize> = plan.per_child.concat();
        seen.sort_unstable();
        assert_eq!(seen, (0..12).collect::<Vec<_>>());
        for (i, &d) in plan.child_of.iter().enumerate() {
            assert!(plan.per_child[d].contains(&i));
        }
        // level 2 and 3: each node's plan covers its share, each device's
        // lanes cover the device's share
        for (d, nplan) in plan.children.iter().enumerate() {
            let mut below: Vec<usize> = nplan.per_child.concat();
            below.sort_unstable();
            let mut share = plan.per_child[d].clone();
            share.sort_unstable();
            assert_eq!(below, share);
            for (dd, dplan) in nplan.children.iter().enumerate() {
                let mut lanes: Vec<usize> = dplan.per_child.concat();
                lanes.sort_unstable();
                let mut dev_share = nplan.per_child[dd].clone();
                dev_share.sort_unstable();
                assert_eq!(lanes, dev_share);
            }
        }
    }

    #[test]
    fn interconnect_price_steers_boundary_heavy_work_to_the_cheap_link() {
        let costs: Vec<CostEstimate> = (0..6)
            .map(|i| {
                let mut c = est(40, &[0; 12]);
                c.index = i;
                c.exchange_bytes = 1.0e9; // 1 GB of boundary rows each
                c.temp_bytes = 1;
                c
            })
            .collect();
        let node_with = |link: Interconnect| {
            Topology::node(
                vec![Topology::device(slot(DeviceSpec::a100(), usize::MAX, 2))],
                Some(link),
            )
        };
        // a 1 GB exchange costs 1000 s over the slow link and 1 ms over the
        // ideal one; local kernel seconds are microscopic next to either
        let slow = Interconnect::new(0.0, 1.0e6);
        let topo = Topology::node(
            vec![node_with(slow), node_with(Interconnect::ideal())],
            None,
        );
        let plan = plan_topology(&costs, &topo).unwrap();
        assert!(
            plan.per_child[1].len() > plan.per_child[0].len(),
            "the cheap link must absorb the boundary-heavy work: {:?}",
            plan.per_child
        );
    }

    #[test]
    fn hierarchical_spill_surfaces_at_the_root() {
        let mut small = est(20, &[0; 4]);
        small.index = 0;
        small.temp_bytes = 1 << 8;
        let mut huge = est(200, &[0; 20]);
        huge.index = 1;
        huge.temp_bytes = 1 << 30;
        let topo = Topology::node(
            vec![Topology::node(
                vec![Topology::device(slot(DeviceSpec::a100(), 1 << 20, 2))],
                Some(Interconnect::ideal()),
            )],
            None,
        );
        let plan = plan_topology(&[small, huge], &topo).unwrap();
        assert_eq!(plan.spilled, vec![1]);
        assert_eq!(plan.child_of[1], usize::MAX);
        assert_eq!(plan.per_child[0], vec![0]);
        // a topology with no usable leaves still reports NoDevices
        let dead = Topology::node(Vec::new(), None);
        assert_eq!(
            plan_topology(&[est(10, &[2])], &dead).unwrap_err(),
            ClusterPlanError::NoDevices
        );
    }

    #[test]
    fn est_makespan_never_grows_with_more_nodes() {
        let costs = skewed_costs(16);
        let node_of = |n_dev: usize| {
            Topology::node(
                (0..n_dev)
                    .map(|_| Topology::device(slot(DeviceSpec::a100(), usize::MAX, 2)))
                    .collect(),
                Some(Interconnect::ideal()),
            )
        };
        let one = Topology::node(vec![node_of(2)], None);
        let four = Topology::node((0..4).map(|_| node_of(2)).collect(), None);
        let m1 = plan_topology(&costs, &one).unwrap().est_makespan(&one);
        let m4 = plan_topology(&costs, &four).unwrap().est_makespan(&four);
        assert!(
            m4 <= m1 + 1e-12,
            "4 nodes ({m4}) must not be slower than 1 ({m1})"
        );
    }
}
