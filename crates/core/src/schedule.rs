//! Memory-aware, cost-model-driven stream scheduling for the batched GPU
//! assembly (paper §4.4).
//!
//! The paper's production loop assembles hundreds of `F̃ᵢ` per cluster by
//! submitting subdomains over 16 CUDA streams under a fixed temporary-arena
//! budget; its CUDA predecessor (arXiv:2502.08382) shows that *stream
//! scheduling and memory admission*, not kernel speed alone, decide
//! throughput at that scale. This module is the planner behind
//! [`assemble_sc_batch_scheduled`](crate::batch::assemble_sc_batch_scheduled):
//!
//! 1. [`estimate_cost`] prices each subdomain from its stepped pattern —
//!    TRSM and SYRK FLOPs below the column pivots, H2D transfer bytes, and
//!    the peak temporary footprint (`Y` plus densified factor blocks);
//! 2. [`plan`] orders submission **longest-processing-time-first** and
//!    assigns each subdomain to the **least-loaded stream**
//!    ([`StreamPolicy::LptLeastLoaded`]; [`StreamPolicy::RoundRobin`] keeps
//!    the naive index-order assignment as the comparison baseline);
//! 3. [`ArenaSim`] admits each subdomain against the device's
//!    [`TempPool`](sc_gpu::TempPool) capacity **in simulated time**, so
//!    concurrent temporaries never oversubscribe the arena. A stream whose
//!    next subdomain does not fit *stalls until a holder releases* — the
//!    paper's **"wait"** configuration. Per-subdomain host-readiness times
//!    (factorization finishing on the CPU while the device assembles other
//!    subdomains) are applied through
//!    [`Device::advance_stream`](sc_gpu::Device::advance_stream) — the
//!    paper's **"mix"** configuration
//!    ([`ScheduleOptions::ready_at`]).

use crate::assemble::ScParams;
use crate::trsm::{FactorStorage, TrsmVariant};
use sc_gpu::{DeviceSpec, SimSpan};
use sc_sparse::{pattern, Csc};

/// Stream-assignment policy for a batched GPU assembly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StreamPolicy {
    /// Subdomain `i` goes to stream `i % n_streams`, in index order — the
    /// blind baseline (and the only thing the pre-scheduler driver did).
    RoundRobin,
    /// Longest-processing-time-first: subdomains sorted by estimated cost
    /// descending, each assigned to the currently least-loaded stream. The
    /// classic 4/3-approximation for makespan on identical machines.
    #[default]
    LptLeastLoaded,
}

/// Options of the scheduled batch driver.
#[derive(Clone, Debug, Default)]
pub struct ScheduleOptions {
    /// Stream-assignment policy.
    pub policy: StreamPolicy,
    /// Per-subdomain host-readiness times in simulated seconds (the paper's
    /// "mix" configuration: subdomain `i`'s factorization finishes on the
    /// host at `ready_at[i]`, so its kernels cannot start earlier — applied
    /// via `Device::advance_stream`). `None` means everything is ready at
    /// `t = 0` (the "wait"-only configuration).
    pub ready_at: Option<Vec<f64>>,
}

/// Cost estimate of one subdomain's assembly, derived from the stepped
/// pattern (pivots), `n_dofs`, and `n_lambda` — computed *before* any kernel
/// runs, which is what lets the planner order submissions.
#[derive(Clone, Debug)]
pub struct CostEstimate {
    /// Position of the subdomain in the input batch.
    pub index: usize,
    /// Factor dimension.
    pub n_dofs: usize,
    /// Local multiplier count.
    pub n_lambda: usize,
    /// Estimated TRSM FLOPs: dense forward substitution below each column's
    /// pivot, `Σⱼ (n − pⱼ)²`.
    pub trsm_flops: f64,
    /// Estimated SYRK FLOPs: with sorted pivots, column `j` pairs with the
    /// `j + 1` columns left of it over rows `pⱼ..n`: `Σⱼ 2 (j+1) (n − pⱼ)`.
    pub syrk_flops: f64,
    /// H2D bytes for the factor and gluing block.
    pub transfer_bytes: f64,
    /// Peak temporary-arena footprint: the dense `Y` (`8 n m` bytes) plus
    /// densified factor blocks when the TRSM densifies.
    pub temp_bytes: usize,
    /// Single-stream device-seconds estimate under `spec` (compute at peak
    /// FP64 plus the PCIe transfer) — the LPT ordering key.
    pub seconds: f64,
}

/// Price one subdomain under the given device spec and resolved parameters.
pub fn estimate_cost(
    spec: &DeviceSpec,
    l: &Csc,
    bt: &Csc,
    params: &ScParams,
    index: usize,
) -> CostEstimate {
    let n = l.ncols();
    let m = bt.ncols();
    // sorted pivots — the stepped pattern the kernels will actually see
    // (identical to SteppedRhs::new's, without building the permuted matrix)
    let mut pivots = pattern::pivots_or_end(bt);
    pivots.sort_unstable();

    let mut trsm_flops = 0.0;
    let mut syrk_flops = 0.0;
    for (j, &p) in pivots.iter().enumerate() {
        let below = n.saturating_sub(p) as f64;
        trsm_flops += below * below;
        syrk_flops += 2.0 * (j + 1) as f64 * below;
    }
    let transfer_bytes = 16.0 * (l.nnz() + bt.nnz()) as f64;

    // temporary footprint: the dense RHS/solution Y always lives in the
    // arena; densifying TRSM variants additionally materialize factor
    // blocks, and the pruning path gathers a dense sub-diagonal panel plus
    // a compacted GEMM output regardless of factor storage
    let y_bytes = 8 * n * m;
    let factor_bytes = match (params.factor_storage, params.trsm) {
        (storage, TrsmVariant::FactorSplit { block, prune }) => {
            let bs = block.block_size(n).min(n);
            // densified diagonal block + sub-diagonal panel, one at a time
            let dense_blocks = if storage == FactorStorage::Dense || prune {
                8 * n * bs
            } else {
                0
            };
            // pruning: compacted rows of the GEMM update (≤ n × width)
            let prune_out = if prune { 8 * n * m } else { 0 };
            dense_blocks + prune_out
        }
        (FactorStorage::Dense, _) => 8 * n * n,
        // sparse kernels work off the (persistent) CSC factor; RHS splitting
        // extracts trailing subfactors, bounded by the factor itself
        (FactorStorage::Sparse, TrsmVariant::RhsSplit(_)) => 16 * l.nnz(),
        (FactorStorage::Sparse, _) => 0,
    };
    let temp_bytes = y_bytes + factor_bytes;

    let mut est = CostEstimate {
        index,
        n_dofs: n,
        n_lambda: m,
        trsm_flops,
        syrk_flops,
        transfer_bytes,
        temp_bytes,
        seconds: 0.0,
    };
    est.seconds = est.seconds_on(spec);
    est
}

impl CostEstimate {
    /// Re-price the single-stream seconds estimate under a different device
    /// spec (compute at peak FP64 plus the PCIe transfer) — what the
    /// cluster planner uses to compare placements on heterogeneous pools.
    pub fn seconds_on(&self, spec: &DeviceSpec) -> f64 {
        (self.trsm_flops + self.syrk_flops) / (spec.fp64_gflops * 1e9)
            + self.transfer_bytes / (spec.pcie_bandwidth_gbps * 1e9)
    }
}

/// Per-stream submission queues produced by [`plan`].
#[derive(Clone, Debug)]
pub struct StreamPlan {
    /// `assignments[s]` lists the subdomain indices stream `s` will process,
    /// in submission order.
    pub assignments: Vec<Vec<usize>>,
    /// Estimated total load per stream (seconds), for diagnostics.
    pub est_load: Vec<f64>,
}

/// Assign subdomains to `n_streams` streams under the given policy.
///
/// An empty batch yields an empty plan for any stream count (including 0);
/// planning a non-empty batch onto 0 streams is a configuration error and
/// panics with a descriptive message instead of silently rounding up.
pub fn plan(costs: &[CostEstimate], n_streams: usize, policy: StreamPolicy) -> StreamPlan {
    if costs.is_empty() {
        return StreamPlan {
            assignments: vec![Vec::new(); n_streams],
            est_load: vec![0.0; n_streams],
        };
    }
    assert!(
        n_streams > 0,
        "cannot plan a batch of {} subdomains onto 0 streams",
        costs.len()
    );
    let mut assignments = vec![Vec::new(); n_streams];
    let mut est_load = vec![0.0f64; n_streams];
    match policy {
        StreamPolicy::RoundRobin => {
            for (k, c) in costs.iter().enumerate() {
                assignments[k % n_streams].push(c.index);
                est_load[k % n_streams] += c.seconds;
            }
        }
        StreamPolicy::LptLeastLoaded => {
            let mut order: Vec<usize> = (0..costs.len()).collect();
            // longest first; ties broken by index for determinism
            order.sort_by(|&a, &b| {
                costs[b]
                    .seconds
                    .partial_cmp(&costs[a].seconds)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(costs[a].index.cmp(&costs[b].index))
            });
            for k in order {
                let s = (0..n_streams)
                    .min_by(|&a, &b| {
                        est_load[a]
                            .partial_cmp(&est_load[b])
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.cmp(&b))
                    })
                    .expect("n_streams >= 1");
                assignments[s].push(costs[k].index);
                est_load[s] += costs[k].seconds;
            }
        }
    }
    StreamPlan {
        assignments,
        est_load,
    }
}

/// Planner-facing description of one device of a pool: its capability spec,
/// its temporary-arena capacity, and its stream count.
#[derive(Clone, Debug)]
pub struct DeviceSlot {
    /// Capability spec (per-device cost pricing on heterogeneous pools).
    pub spec: DeviceSpec,
    /// Temporary-arena capacity in bytes
    /// ([`TempPool::capacity`](sc_gpu::TempPool::capacity)) — the
    /// admissibility bound: a subdomain whose peak temporaries exceed it can
    /// never run on this device.
    pub arena_capacity: usize,
    /// Number of streams (parallel capacity of the device).
    pub n_streams: usize,
}

impl DeviceSlot {
    /// Describe a simulated device for the planner.
    pub fn of(device: &sc_gpu::Device) -> Self {
        DeviceSlot {
            spec: device.spec().clone(),
            arena_capacity: device.temp_pool().capacity(),
            n_streams: device.n_streams(),
        }
    }
}

/// Device-level partition of a batch produced by [`plan_cluster`].
#[derive(Clone, Debug)]
pub struct ClusterPlan {
    /// `per_device[d]` lists the subdomain indices
    /// ([`CostEstimate::index`]) assigned to device `d`.
    pub per_device: Vec<Vec<usize>>,
    /// Estimated total load per device in that device's own seconds.
    pub est_load: Vec<f64>,
    /// Device of each entry of the input cost slice, in slice order (batch
    /// order when the costs were priced in batch order).
    pub device_of: Vec<usize>,
}

/// Why a batch could not be partitioned across a device pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClusterPlanError {
    /// The batch is non-empty but the pool holds no device that could
    /// execute anything (no devices at all, or none with streams).
    NoDevices,
    /// A subdomain's peak temporary footprint exceeds every stream-capable
    /// device's arena: it cannot run anywhere in this pool.
    SubdomainTooLarge {
        /// Batch index of the offending subdomain.
        index: usize,
        /// Its peak temporary footprint in bytes.
        temp_bytes: usize,
        /// The largest arena capacity in the pool.
        max_arena: usize,
    },
}

impl std::fmt::Display for ClusterPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterPlanError::NoDevices => write!(
                f,
                "cannot partition a non-empty batch: the pool holds no \
                 device with streams"
            ),
            ClusterPlanError::SubdomainTooLarge {
                index,
                temp_bytes,
                max_arena,
            } => write!(
                f,
                "subdomain {index} needs {temp_bytes} B of temporaries but the \
                 largest device arena in the pool holds only {max_arena} B"
            ),
        }
    }
}

impl std::error::Error for ClusterPlanError {}

/// Partition a batch across the devices of a pool: **cost-aware LPT with
/// per-device arena admissibility**. Subdomains are taken longest-first
/// (priced under each device's own spec, so a slow card sees bigger numbers)
/// and each goes to the admissible device whose estimated completion time —
/// accumulated load over its stream count — stays lowest. A subdomain whose
/// temporaries exceed a device's arena capacity is never placed there;
/// when only the big card fits it, it falls back to the big card regardless
/// of load. The per-device queues are then scheduled independently by
/// [`plan`] + arena admission inside the batch driver.
///
/// Pricing is the analytic [`CostEstimate::seconds_on`]; when the exact
/// per-device kernel durations are already known (recorded kernel
/// sequences), use [`plan_cluster_by`] — peak-FLOP pricing ignores launch
/// overhead and overloads fast cards on launch-bound batches.
pub fn plan_cluster(
    costs: &[CostEstimate],
    devices: &[DeviceSlot],
) -> Result<ClusterPlan, ClusterPlanError> {
    plan_cluster_by(costs, devices, |c, d| c.seconds_on(&devices[d].spec))
}

/// [`plan_cluster`] with caller-supplied pricing: `seconds_of(cost, d)`
/// returns the subdomain's single-stream seconds on device `d`. The batch
/// drivers pass the recorded kernel sequences priced by each device's own
/// duration model ([`DeviceSpec::kernel_seconds`]), which accounts for
/// launch overhead and the occupancy ramp that the analytic estimate
/// ignores.
pub fn plan_cluster_by(
    costs: &[CostEstimate],
    devices: &[DeviceSlot],
    seconds_of: impl Fn(&CostEstimate, usize) -> f64,
) -> Result<ClusterPlan, ClusterPlanError> {
    if costs.is_empty() {
        return Ok(ClusterPlan {
            per_device: vec![Vec::new(); devices.len()],
            est_load: vec![0.0; devices.len()],
            device_of: Vec::new(),
        });
    }
    // a device without streams can never execute anything: it is not a
    // partition candidate (pools may carry one, e.g. a drained card)
    if !devices.iter().any(|d| d.n_streams > 0) {
        return Err(ClusterPlanError::NoDevices);
    }
    // per-device seconds of every subdomain, priced under that device's spec
    let seconds: Vec<Vec<f64>> = costs
        .iter()
        .map(|c| (0..devices.len()).map(|d| seconds_of(c, d)).collect())
        .collect();
    // longest-first under the worst-case device (standard heuristic ordering
    // for unrelated machines); ties broken by index for determinism
    let worst: Vec<f64> = seconds
        .iter()
        .map(|s| s.iter().copied().fold(0.0f64, f64::max))
        .collect();
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| {
        worst[b]
            .partial_cmp(&worst[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(costs[a].index.cmp(&costs[b].index))
    });

    let mut per_device = vec![Vec::new(); devices.len()];
    let mut est_load = vec![0.0f64; devices.len()];
    let mut device_of = vec![usize::MAX; costs.len()];
    for k in order {
        let best = (0..devices.len())
            .filter(|&d| {
                devices[d].n_streams > 0 && costs[k].temp_bytes <= devices[d].arena_capacity
            })
            .min_by(|&a, &b| {
                let fa = (est_load[a] + seconds[k][a]) / devices[a].n_streams as f64;
                let fb = (est_load[b] + seconds[k][b]) / devices[b].n_streams as f64;
                fa.partial_cmp(&fb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
        let Some(d) = best else {
            return Err(ClusterPlanError::SubdomainTooLarge {
                index: costs[k].index,
                temp_bytes: costs[k].temp_bytes,
                max_arena: devices
                    .iter()
                    .filter(|d| d.n_streams > 0)
                    .map(|d| d.arena_capacity)
                    .max()
                    .unwrap_or(0),
            });
        };
        per_device[d].push(costs[k].index);
        est_load[d] += seconds[k][d];
        device_of[k] = d;
    }
    Ok(ClusterPlan {
        per_device,
        est_load,
        device_of,
    })
}

/// One subdomain's placement in the executed schedule (per-stream timeline
/// entry of the batch report).
#[derive(Clone, Copy, Debug)]
pub struct ScheduledSpan {
    /// Subdomain index in the input batch.
    pub index: usize,
    /// Stream it ran on.
    pub stream: usize,
    /// Simulated time its temporary-arena reservation was granted (equals
    /// `span.start` up to stream availability; strictly earlier stalls mean
    /// the stream waited on the arena — the "wait" configuration).
    pub admitted_at: f64,
    /// Simulated execution interval (first kernel start .. last kernel end).
    pub span: SimSpan,
    /// Bytes reserved in the temporary arena for the interval.
    pub temp_bytes: usize,
}

/// Simulated-time admission against the temporary arena: reservations are
/// intervals `[start, release)` of bytes; [`ArenaSim::admit`] returns the
/// earliest instant at which a new reservation can *permanently* fit — i.e.
/// after which committed usage never again exceeds `capacity − bytes`. The
/// conservative "permanently" guard is what keeps admission safe even though
/// a reservation's release time is only known after its kernels are
/// replayed.
pub struct ArenaSim {
    capacity: usize,
    /// Committed reservations as `(start, release, bytes)`.
    live: Vec<(f64, f64, usize)>,
}

impl ArenaSim {
    /// Arena of `capacity` bytes (use the device's
    /// [`TempPool::capacity`](sc_gpu::TempPool::capacity)).
    pub fn new(capacity: usize) -> Self {
        ArenaSim {
            capacity,
            live: Vec::new(),
        }
    }

    /// Arena capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Earliest admission instant `t ≥ not_before` for a reservation of
    /// `bytes`, against the committed reservation set.
    ///
    /// # Panics
    ///
    /// When `bytes > capacity` — the request can never be satisfied,
    /// mirroring [`TempPool::alloc`](sc_gpu::TempPool::alloc)'s contract.
    pub fn admit(&self, bytes: usize, not_before: f64) -> f64 {
        self.try_admit(bytes, not_before)
            .expect("admission blocked only by open (in-flight) reservations")
    }

    /// [`ArenaSim::admit`], but `None` when admission is blocked by an
    /// **open** reservation (one whose release time is not yet known — an
    /// in-flight subdomain): the caller must replay other streams until the
    /// holder closes.
    pub fn try_admit(&self, bytes: usize, not_before: f64) -> Option<f64> {
        assert!(
            bytes <= self.capacity,
            "temporary reservation of {bytes} B exceeds the device arena \
             capacity {} B — the subdomain cannot be scheduled on this device",
            self.capacity
        );
        let budget = self.capacity as isize - bytes as isize;
        // sweep usage over the committed breakpoints; admission must wait
        // past the *last* segment whose usage exceeds the remaining budget
        let mut events: Vec<(f64, isize)> = Vec::with_capacity(2 * self.live.len());
        for &(start, release, b) in &self.live {
            events.push((start, b as isize));
            events.push((release, -(b as isize)));
        }
        events.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                // releases before acquisitions at the same instant
                .then(a.1.cmp(&b.1))
        });
        let mut t = not_before;
        let mut usage = 0isize;
        for (w, &(at, delta)) in events.iter().enumerate() {
            usage += delta;
            // usage holds on [at, seg_end)
            let seg_end = events.get(w + 1).map(|e| e.0).unwrap_or(at);
            if usage > budget && seg_end > at {
                // cannot be resident during an over-budget segment: wait
                // until it ends
                t = t.max(seg_end);
            }
        }
        debug_assert_eq!(usage, 0, "reservation events must balance");
        t.is_finite().then_some(t)
    }

    /// Commit a reservation of `bytes` over `[start, release)`.
    pub fn reserve(&mut self, start: f64, release: f64, bytes: usize) {
        debug_assert!(release >= start, "reservation released before it starts");
        self.live.push((start, release.max(start), bytes));
    }

    /// Open a reservation whose release time is not yet known (an in-flight
    /// subdomain): it holds `bytes` from `start` indefinitely until
    /// [`ArenaSim::close`] stamps the release. Returns a handle.
    pub fn open(&mut self, start: f64, bytes: usize) -> usize {
        self.live.push((start, f64::INFINITY, bytes));
        self.live.len() - 1
    }

    /// Stamp the release time of an open reservation.
    pub fn close(&mut self, handle: usize, release: f64) {
        debug_assert!(
            self.live[handle].1.is_infinite(),
            "closing an already-closed reservation"
        );
        self.live[handle].1 = release.max(self.live[handle].0);
    }

    /// Peak simultaneous committed bytes over all reservations.
    pub fn high_water(&self) -> usize {
        let mut events: Vec<(f64, isize)> = Vec::with_capacity(2 * self.live.len());
        for &(start, release, b) in &self.live {
            events.push((start, b as isize));
            events.push((release, -(b as isize)));
        }
        events.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                // releases before acquisitions at the same instant
                .then(a.1.cmp(&b.1))
        });
        let mut usage = 0isize;
        let mut peak = 0isize;
        for (_, delta) in events {
            usage += delta;
            peak = peak.max(usage);
        }
        peak.max(0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::ScConfig;
    use sc_sparse::Coo;

    fn bt_with_pivots(n: usize, pivots: &[usize]) -> Csc {
        let mut c = Coo::new(n, pivots.len());
        for (j, &p) in pivots.iter().enumerate() {
            if p < n {
                c.push(p, j, 1.0);
            }
        }
        c.to_csc()
    }

    fn diag_factor(n: usize) -> Csc {
        let mut c = Coo::new(n, n);
        for j in 0..n {
            c.push(j, j, 2.0);
        }
        c.to_csc()
    }

    fn est(n: usize, pivots: &[usize]) -> CostEstimate {
        let l = diag_factor(n);
        let bt = bt_with_pivots(n, pivots);
        let params = ScConfig::optimized(true, false).resolve(true, &l, &bt);
        estimate_cost(&DeviceSpec::a100(), &l, &bt, &params, 0)
    }

    #[test]
    fn cost_grows_with_size_and_pivot_depth() {
        let small = est(50, &[40, 45]);
        let big = est(500, &[10, 20]);
        assert!(big.seconds > small.seconds);
        assert!(big.trsm_flops > small.trsm_flops);
        // deep pivots (little work below) must be cheaper than shallow ones
        let shallow = est(100, &[0, 0, 0]);
        let deep = est(100, &[90, 90, 90]);
        assert!(shallow.trsm_flops > deep.trsm_flops);
        assert!(shallow.syrk_flops > deep.syrk_flops);
    }

    #[test]
    fn empty_subdomain_costs_only_transfer() {
        let e = est(10, &[]);
        assert_eq!(e.n_lambda, 0);
        assert_eq!(e.trsm_flops, 0.0);
        assert_eq!(e.syrk_flops, 0.0);
        assert!(e.transfer_bytes > 0.0, "the factor still travels");
    }

    #[test]
    fn lpt_balances_a_skewed_batch_better_than_round_robin() {
        // sizes arranged so round-robin piles the heavy items onto stream 0
        let costs: Vec<CostEstimate> = (0..8)
            .map(|i| {
                let mut c = est(40, &[0; 12]);
                c.index = i;
                c.seconds = if i % 2 == 0 { 8.0 } else { 1.0 };
                c
            })
            .collect();
        let rr = plan(&costs, 2, StreamPolicy::RoundRobin);
        let lpt = plan(&costs, 2, StreamPolicy::LptLeastLoaded);
        let makespan = |p: &StreamPlan| p.est_load.iter().copied().fold(0.0f64, f64::max);
        assert!(
            makespan(&lpt) < makespan(&rr),
            "LPT {:?} must beat round-robin {:?}",
            lpt.est_load,
            rr.est_load
        );
        // every subdomain appears exactly once
        let mut seen: Vec<usize> = lpt.assignments.concat();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn plan_handles_degenerate_shapes() {
        let p = plan(&[], 4, StreamPolicy::LptLeastLoaded);
        assert!(p.assignments.iter().all(|a| a.is_empty()));
        let one = vec![est(10, &[2])];
        let p = plan(&one, 1, StreamPolicy::RoundRobin);
        assert_eq!(p.assignments, vec![vec![0]]);
    }

    fn slot(spec: DeviceSpec, arena: usize, n_streams: usize) -> DeviceSlot {
        DeviceSlot {
            spec,
            arena_capacity: arena,
            n_streams,
        }
    }

    #[test]
    fn plan_rejects_zero_streams_for_nonempty_batches_only() {
        let empty = plan(&[], 0, StreamPolicy::LptLeastLoaded);
        assert!(empty.assignments.is_empty());
        assert!(empty.est_load.is_empty());
        let one = vec![est(10, &[2])];
        let err = std::panic::catch_unwind(|| plan(&one, 0, StreamPolicy::RoundRobin)).unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(msg.contains("0 streams"), "descriptive error, got: {msg}");
    }

    #[test]
    fn cluster_plan_balances_across_uniform_devices() {
        let costs: Vec<CostEstimate> = (0..8)
            .map(|i| {
                let mut c = est(40, &[0; 12]);
                c.index = i;
                c.trsm_flops = if i % 2 == 0 { 8.0e9 } else { 1.0e9 };
                c.syrk_flops = 0.0;
                c.transfer_bytes = 0.0;
                c
            })
            .collect();
        let devs = vec![
            slot(DeviceSpec::a100(), usize::MAX, 2),
            slot(DeviceSpec::a100(), usize::MAX, 2),
        ];
        let p = plan_cluster(&costs, &devs).unwrap();
        // every subdomain placed exactly once
        let mut seen: Vec<usize> = p.per_device.concat();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
        assert_eq!(p.device_of.len(), 8);
        // LPT must split the 4 heavy items evenly
        let heavy_per_dev: Vec<usize> = p
            .per_device
            .iter()
            .map(|idx| idx.iter().filter(|&&i| i % 2 == 0).count())
            .collect();
        assert_eq!(heavy_per_dev, vec![2, 2], "heavy items must spread");
        let spread = (p.est_load[0] - p.est_load[1]).abs();
        assert!(
            spread <= p.est_load[0].max(p.est_load[1]) * 0.5,
            "loads {:?} must be roughly balanced",
            p.est_load
        );
    }

    #[test]
    fn cluster_plan_respects_arena_admissibility() {
        // one subdomain too big for the small card: it must land on the big
        // one even though the big one is the slower device
        let mut big = est(400, &[0; 20]);
        big.index = 0;
        big.temp_bytes = 1 << 20;
        let mut small_a = est(40, &[0; 8]);
        small_a.index = 1;
        small_a.temp_bytes = 1 << 10;
        let mut small_b = small_a.clone();
        small_b.index = 2;
        let devs = vec![
            slot(DeviceSpec::tiny_test_device(), 2 << 20, 2), // big arena, slow
            slot(DeviceSpec::a100(), 16 << 10, 2),            // small arena, fast
        ];
        let p = plan_cluster(&[big, small_a, small_b], &devs).unwrap();
        assert_eq!(p.device_of[0], 0, "oversized subdomain must use device 0");
        assert!(p.per_device[0].contains(&0));
    }

    #[test]
    fn cluster_plan_prefers_the_faster_device_for_heavy_work() {
        let costs: Vec<CostEstimate> = (0..6)
            .map(|i| {
                let mut c = est(40, &[0; 12]);
                c.index = i;
                c.trsm_flops = 4.0e9;
                c.syrk_flops = 0.0;
                c.transfer_bytes = 0.0;
                c.temp_bytes = 1;
                c
            })
            .collect();
        let devs = vec![
            slot(DeviceSpec::h100(), usize::MAX, 2),
            slot(DeviceSpec::tiny_test_device(), usize::MAX, 2),
        ];
        let p = plan_cluster(&costs, &devs).unwrap();
        // the H100 is ~3000x faster than the tiny card: everything goes there
        assert!(
            p.per_device[0].len() > p.per_device[1].len(),
            "fast device must absorb most of the equal-cost work: {:?}",
            p.per_device
        );
    }

    #[test]
    fn cluster_plan_skips_zero_stream_devices() {
        let costs: Vec<CostEstimate> = (0..4)
            .map(|i| {
                let mut c = est(20, &[0; 6]);
                c.index = i;
                c
            })
            .collect();
        // a drained (0-stream) card next to a working one: everything must
        // land on the working card, never on the unusable one
        let devs = vec![
            slot(DeviceSpec::a100(), usize::MAX, 0),
            slot(DeviceSpec::a100(), usize::MAX, 2),
        ];
        let p = plan_cluster(&costs, &devs).unwrap();
        assert!(p.per_device[0].is_empty(), "0-stream device must stay idle");
        assert_eq!(p.per_device[1].len(), 4);
        assert!(p.device_of.iter().all(|&d| d == 1));
        // a pool of only 0-stream devices cannot run anything
        let dead = vec![slot(DeviceSpec::a100(), usize::MAX, 0)];
        assert_eq!(
            plan_cluster(&costs, &dead).unwrap_err(),
            ClusterPlanError::NoDevices
        );
    }

    #[test]
    fn cluster_plan_errors_are_descriptive() {
        let one = vec![est(10, &[2])];
        assert_eq!(
            plan_cluster(&one, &[]).unwrap_err(),
            ClusterPlanError::NoDevices
        );
        let empty = plan_cluster(&[], &[]).unwrap();
        assert!(empty.per_device.is_empty());
        assert!(empty.device_of.is_empty());

        let mut huge = est(10, &[2]);
        huge.temp_bytes = 1 << 30;
        let err = plan_cluster(&[huge], &[slot(DeviceSpec::a100(), 1 << 20, 2)]).unwrap_err();
        match err {
            ClusterPlanError::SubdomainTooLarge {
                index,
                temp_bytes,
                max_arena,
            } => {
                assert_eq!(index, 0);
                assert_eq!(temp_bytes, 1 << 30);
                assert_eq!(max_arena, 1 << 20);
            }
            other => panic!("wrong error: {other}"),
        }
        assert!(err.to_string().contains("largest device arena"));
    }

    #[test]
    fn arena_admits_immediately_when_it_fits() {
        let a = ArenaSim::new(1000);
        assert_eq!(a.admit(1000, 0.5), 0.5);
    }

    #[test]
    fn arena_waits_for_release() {
        let mut a = ArenaSim::new(1000);
        a.reserve(0.0, 2.0, 800);
        // 300 B do not fit until t = 2.0
        assert_eq!(a.admit(300, 0.0), 2.0);
        // 200 B fit right away
        assert_eq!(a.admit(200, 0.0), 0.0);
    }

    #[test]
    fn arena_respects_future_reservations() {
        let mut a = ArenaSim::new(1000);
        // committed for the future: [5, 9)
        a.reserve(5.0, 9.0, 800);
        // a 300 B request at t=0 must NOT slot in before 5.0, because its
        // release time is unknown and could overlap [5, 9)
        assert_eq!(a.admit(300, 0.0), 9.0);
    }

    #[test]
    #[should_panic(expected = "exceeds the device arena")]
    fn arena_rejects_oversized_requests() {
        let a = ArenaSim::new(10);
        let _ = a.admit(11, 0.0);
    }

    #[test]
    fn arena_high_water_tracks_peak() {
        let mut a = ArenaSim::new(1000);
        a.reserve(0.0, 4.0, 400);
        a.reserve(1.0, 2.0, 300);
        a.reserve(2.0, 5.0, 300);
        assert_eq!(a.high_water(), 700);
    }
}
