//! Input abstraction of the batched assembly drivers: a [`BatchSource`]
//! yields, per subdomain, the Cholesky factor `L` and the row-permuted
//! gluing block `B̃ᵀ`.
//!
//! Two shapes of input unify behind the trait:
//!
//! - **eager** — the factors already exist, e.g. a slice of
//!   [`BatchItem`](crate::batch::BatchItem)s: [`BatchSource::factor`]
//!   borrows;
//! - **lazy** — each subdomain's factor is *derived inside its own task*
//!   ([`LazyBatch`]): [`BatchSource::factor`] returns an owned
//!   [`Cow`], so peak memory holds at most one in-flight factor copy per
//!   worker thread instead of one per subdomain — the right shape for
//!   clusters with hundreds of subdomains (this replaces the deleted
//!   `assemble_sc_batch*_map` driver twins).
//!
//! [`AssemblySession::assemble`](crate::AssemblySession::assemble) accepts
//! anything implementing [`IntoBatchSource`], which is blanket-implemented
//! for every [`BatchSource`].

use crate::batch::BatchItemOf;
use sc_dense::Scalar;
use sc_sparse::{Csc, CscOf};
use std::borrow::Cow;

/// Per-subdomain input of the batched assembly drivers, in working
/// precision `S` (`f64` by default — every historical `BatchSource` bound
/// resolves unchanged; the mixed-precision session path consumes
/// `BatchSource<f32>` sources built by casting).
///
/// `factor(i)` may be called from any worker thread (hence `Sync`) and may
/// be expensive (lazy derivation); `gluing(i)` must be a cheap borrow.
pub trait BatchSource<S: Scalar = f64>: Sync {
    /// Number of subdomains in the batch.
    fn len(&self) -> usize;

    /// Whether the batch is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The Cholesky factor of subdomain `i` (CSC, diag-first) — borrowed
    /// when it already exists, owned when derived inside the calling task.
    fn factor(&self, i: usize) -> Cow<'_, CscOf<S>>;

    /// `B̃ᵢᵀ` of subdomain `i`, rows already permuted into factor order.
    fn gluing(&self, i: usize) -> &CscOf<S>;
}

/// Conversion into a [`BatchSource`] — the bound of
/// [`AssemblySession::assemble`](crate::AssemblySession::assemble). Blanket
/// implemented for every source, so eager slices and [`LazyBatch`] closures
/// pass through one entry point.
pub trait IntoBatchSource<S: Scalar = f64> {
    /// The concrete source type.
    type Source: BatchSource<S>;

    /// Perform the conversion.
    fn into_batch_source(self) -> Self::Source;
}

impl<S: Scalar, T: BatchSource<S>> IntoBatchSource<S> for T {
    type Source = T;

    fn into_batch_source(self) -> T {
        self
    }
}

/// References to sources are sources (the drivers take them by value).
impl<S: Scalar, T: BatchSource<S> + ?Sized> BatchSource<S> for &T {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn factor(&self, i: usize) -> Cow<'_, CscOf<S>> {
        (**self).factor(i)
    }

    fn gluing(&self, i: usize) -> &CscOf<S> {
        (**self).gluing(i)
    }
}

impl<'a, S: Scalar> BatchSource<S> for [BatchItemOf<'a, S>] {
    fn len(&self) -> usize {
        <[BatchItemOf<'a, S>]>::len(self)
    }

    fn factor(&self, i: usize) -> Cow<'_, CscOf<S>> {
        Cow::Borrowed(self[i].l)
    }

    fn gluing(&self, i: usize) -> &CscOf<S> {
        self[i].bt
    }
}

impl<'a, S: Scalar> BatchSource<S> for Vec<BatchItemOf<'a, S>> {
    fn len(&self) -> usize {
        <[BatchItemOf<'a, S>]>::len(self)
    }

    fn factor(&self, i: usize) -> Cow<'_, CscOf<S>> {
        Cow::Borrowed(self[i].l)
    }

    fn gluing(&self, i: usize) -> &CscOf<S> {
        self[i].bt
    }
}

/// Owned `(L, B̃ᵀ)` pairs (the shape bench workloads carry) are a source
/// too — both matrices borrow from the slice.
impl<S: Scalar> BatchSource<S> for [(CscOf<S>, CscOf<S>)] {
    fn len(&self) -> usize {
        <[(CscOf<S>, CscOf<S>)]>::len(self)
    }

    fn factor(&self, i: usize) -> Cow<'_, CscOf<S>> {
        Cow::Borrowed(&self[i].0)
    }

    fn gluing(&self, i: usize) -> &CscOf<S> {
        &self[i].1
    }
}

impl<S: Scalar> BatchSource<S> for Vec<(CscOf<S>, CscOf<S>)> {
    fn len(&self) -> usize {
        <[(CscOf<S>, CscOf<S>)]>::len(self)
    }

    fn factor(&self, i: usize) -> Cow<'_, CscOf<S>> {
        Cow::Borrowed(&self[i].0)
    }

    fn gluing(&self, i: usize) -> &CscOf<S> {
        &self[i].1
    }
}

/// A lazy [`BatchSource`]: `prepare(i, item)` yields subdomain `i`'s factor
/// (borrowed when it already exists, owned when derived inside the task) and
/// `gluing(item)` borrows its gluing block.
///
/// ```
/// use sc_core::{AssemblySession, Backend, LazyBatch, ScConfig};
/// # use sc_sparse::{Coo, Csc};
/// # let mut c = Coo::new(2, 2);
/// # c.push(0, 0, 4.0); c.push(1, 1, 4.0);
/// # c.push(1, 0, -1.0); c.push(0, 1, -1.0);
/// # let k = c.to_csc();
/// # let mut b = Coo::new(2, 1);
/// # b.push(0, 0, 1.0);
/// # let bt = b.to_csc();
/// # let chol = sc_factor::SparseCholesky::factorize(&k, Default::default()).unwrap();
/// # let items = vec![(chol, bt)];
/// // items: Vec<(SparseCholesky, Csc)> — the factor is extracted per task
/// let source = LazyBatch::new(
///     &items,
///     |_, (chol, _)| std::borrow::Cow::Owned(chol.factor_csc()),
///     |(_, bt)| bt,
/// );
/// let session = AssemblySession::new(Backend::cpu(), ScConfig::optimized(false, false));
/// let result = session.assemble(source);
/// assert_eq!(result.f.len(), 1);
/// ```
pub struct LazyBatch<'a, T, FP, FB> {
    items: &'a [T],
    prepare: FP,
    gluing: FB,
}

impl<'a, T, FP, FB> LazyBatch<'a, T, FP, FB>
where
    T: Sync,
    FP: for<'b> Fn(usize, &'b T) -> Cow<'b, Csc> + Sync,
    FB: Fn(&T) -> &Csc + Sync,
{
    /// Wrap `items` with a per-task factor derivation.
    pub fn new(items: &'a [T], prepare: FP, gluing: FB) -> Self {
        LazyBatch {
            items,
            prepare,
            gluing,
        }
    }
}

impl<'a, T, FP, FB> BatchSource for LazyBatch<'a, T, FP, FB>
where
    T: Sync,
    FP: for<'b> Fn(usize, &'b T) -> Cow<'b, Csc> + Sync,
    FB: Fn(&T) -> &Csc + Sync,
{
    fn len(&self) -> usize {
        self.items.len()
    }

    fn factor(&self, i: usize) -> Cow<'_, Csc> {
        (self.prepare)(i, &self.items[i])
    }

    fn gluing(&self, i: usize) -> &Csc {
        (self.gluing)(&self.items[i])
    }
}
