//! Measured-rate calibration of the host-side cost model.
//!
//! The planner prices every placement through [`DeviceSpec`] rate constants.
//! The simulated accelerators are *defined* by their spec, but the host spec
//! ([`DeviceSpec::host`]) nominally claims a server-class 250 GFLOP/s — a
//! machine this workspace rarely runs on. A [`MicrokernelRates`] probe times
//! the actual cache-blocked kernels (`sc_dense::blocked`) and the binned
//! SpMV (`sc_sparse::binned`) on the current machine for a few milliseconds
//! each, and [`MicrokernelRates::host_spec`] folds the measured rates into a
//! `"calibrated-host"` spec that [`HybridPlanOptions::with_calibrated_host`]
//! (and the cluster planner via `with_host`) can price with. The `kernels`
//! bench bin gates on the calibrated predictions tracking realized times
//! more closely than the nominal ones.
//!
//! [`HybridPlanOptions::with_calibrated_host`]: crate::HybridPlanOptions::with_calibrated_host

use crate::schedule::{ApplyEstimate, CostEstimate};
use sc_dense::{Mat, Trans};
use sc_gpu::{DeviceSpec, KernelCost};
use sc_sparse::{binned_spmv, BinnedPlan, Coo};
use std::time::Instant;

/// Measured sustained rates of the host microkernels, in the same units the
/// [`DeviceSpec`] duration model uses.
#[derive(Clone, Copy, Debug)]
pub struct MicrokernelRates {
    /// Blocked dense gemm, GFLOP/s.
    pub gemm_gflops: f64,
    /// Blocked forward substitution (TRSM), GFLOP/s.
    pub trsm_gflops: f64,
    /// Blocked symmetric rank-k update (SYRK), GFLOP/s.
    pub syrk_gflops: f64,
    /// Blocked partial Cholesky, GFLOP/s.
    pub chol_gflops: f64,
    /// Row-length-binned SpMV, effective GB/s of matrix traffic.
    pub spmv_gbps: f64,
    /// Dense GEMV (the explicit apply, paper Eq. 12), effective GB/s of
    /// matrix traffic — GEMV is memory-bound on the host, so the bandwidth
    /// sustained streaming `F̃ᵢ` is the rate that matters.
    pub gemv_gbps: f64,
    /// Sparse triangular solve (the two `L` solves of the implicit apply,
    /// paper Eq. 11), GFLOP/s — latency-bound pointer chasing, typically far
    /// below the dense rates.
    pub trisolve_gflops: f64,
}

/// Best-of-N wall-clock of a closure, in seconds (the minimum filters
/// scheduler noise, which only ever adds time).
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn fill(m: usize, n: usize, seed: u64) -> Mat {
    let mut s = seed | 1;
    Mat::from_fn(m, n, |_, _| {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0 // sc-analyze: allow(precision-discipline)
    })
}

impl MicrokernelRates {
    /// The rates the nominal [`DeviceSpec::host`] spec implies (every kernel
    /// class at peak FLOP rate, SpMV at DRAM bandwidth) — the baseline the
    /// calibration gate compares against.
    pub fn nominal() -> Self {
        let host = DeviceSpec::host();
        MicrokernelRates {
            gemm_gflops: host.fp64_gflops,
            trsm_gflops: host.fp64_gflops,
            syrk_gflops: host.fp64_gflops,
            chol_gflops: host.fp64_gflops,
            spmv_gbps: host.mem_bandwidth_gbps,
            gemv_gbps: host.mem_bandwidth_gbps,
            trisolve_gflops: host.fp64_gflops,
        }
    }

    /// Time the actual kernels on this machine (a few milliseconds total;
    /// best-of-3 per kernel class) and return sustained rates.
    pub fn probe() -> Self {
        // gemm: n³ problem crossing the blocked-path threshold
        let n = 192;
        let a = fill(n, n, 1);
        let b = fill(n, n, 2);
        let mut c = Mat::zeros(n, n);
        let secs = best_of(3, || {
            sc_dense::gemm_blocked(
                1.0,
                a.as_ref(),
                Trans::No,
                b.as_ref(),
                Trans::No,
                0.0,
                c.as_mut(),
            );
        });
        let nf = n as f64; // sc-analyze: allow(precision-discipline)
        let gemm_gflops = 2.0 * nf * nf * nf / secs / 1e9;

        // trsm: unit-ish lower factor, block of RHS
        let nrhs = 64;
        let l = Mat::from_fn(n, n, |i, j| {
            if i == j {
                2.0
            } else if i > j {
                0.01
            } else {
                0.0
            }
        });
        let x0 = fill(n, nrhs, 3);
        let mut x = x0.clone();
        let secs = best_of(3, || {
            x.as_mut().copy_from(x0.as_ref());
            sc_dense::trsm_lower_left_blocked(l.as_ref(), x.as_mut());
        });
        let trsm_gflops = nf * nf * nrhs as f64 / secs / 1e9; // sc-analyze: allow(precision-discipline)

        // syrk: AᵀA with a tall A
        let k = 256;
        let at = fill(k, n, 4);
        let mut cs = Mat::zeros(n, n);
        let secs = best_of(3, || {
            sc_dense::syrk_t_blocked(1.0, at.as_ref(), 0.0, cs.as_mut());
        });
        let syrk_gflops = k as f64 * nf * nf / secs / 1e9; // sc-analyze: allow(precision-discipline)

        // cholesky: SPD from the syrk result plus a diagonal shift
        let mut spd = Mat::zeros(n, n);
        sc_dense::syrk_t(1.0, at.as_ref(), 0.0, spd.as_mut());
        for i in 0..n {
            spd[(i, i)] += 2.0 * nf;
        }
        spd.symmetrize_from_lower();
        let mut f = spd.clone();
        let secs = best_of(3, || {
            f.as_mut().copy_from(spd.as_ref());
            sc_dense::partial_cholesky_blocked(f.as_mut(), n).expect("probe matrix is SPD");
        });
        let chol_gflops = nf * nf * nf / 3.0 / secs / 1e9;

        // binned SpMV: a 5-banded matrix large enough to stream
        let rows = 20_000;
        let mut coo = Coo::new(rows, rows);
        for i in 0..rows {
            for d in [0usize, 1, 2, 3, 4] {
                if i + d < rows {
                    coo.push(i, i + d, 1.0 + d as f64); // sc-analyze: allow(precision-discipline)
                }
            }
        }
        let m = coo.to_csr();
        let plan = BinnedPlan::of(&m);
        let xv: Vec<f64> = (0..rows).map(|i| (i % 17) as f64 - 8.0).collect(); // sc-analyze: allow(precision-discipline)
        let mut yv = vec![0.0; rows];
        let secs = best_of(3, || {
            binned_spmv(&plan, &m, 1.0, &xv, 0.0, &mut yv);
        });
        // 8-byte value + 8-byte index per stored entry
        let bytes = 16.0 * m.nnz() as f64; // sc-analyze: allow(precision-discipline)
        let spmv_gbps = bytes / secs / 1e9;

        // gemv: one dense matrix-vector product streaming an m × m operator
        // (the explicit apply shape); rate reported as matrix-read bandwidth
        let mg = 384;
        let fm = fill(mg, mg, 5);
        let xg: Vec<f64> = (0..mg).map(|i| (i % 13) as f64 * 0.125 - 0.75).collect(); // sc-analyze: allow(precision-discipline)
        let mut yg = vec![0.0; mg];
        let secs = best_of(3, || {
            sc_dense::gemv(1.0, fm.as_ref(), &xg, 0.0, &mut yg);
        });
        let gemv_gbps = 8.0 * mg as f64 * mg as f64 / secs / 1e9; // sc-analyze: allow(precision-discipline)

        // sparse trisolve: forward + transposed-backward solve with a banded
        // lower factor (the implicit apply's Eq. 11 inner solves); 2 flops
        // per stored entry per sweep, two sweeps
        let nt = 20_000;
        let mut lt = Coo::new(nt, nt);
        for i in 0..nt {
            lt.push(i, i, 4.0);
            for d in [1usize, 2, 3, 4] {
                if i >= d {
                    lt.push(i, i - d, 0.05 * d as f64); // sc-analyze: allow(precision-discipline)
                }
            }
        }
        let lcsc = lt.to_csc();
        let rhs: Vec<f64> = (0..nt).map(|i| (i % 11) as f64 * 0.2 - 1.0).collect(); // sc-analyze: allow(precision-discipline)
        let mut xt = rhs.clone();
        let secs = best_of(3, || {
            xt.copy_from_slice(&rhs);
            sc_sparse::csc_lower_solve(&lcsc, &mut xt);
            sc_sparse::csc_lower_t_solve(&lcsc, &mut xt);
        });
        let trisolve_gflops = 4.0 * lcsc.nnz() as f64 / secs / 1e9; // sc-analyze: allow(precision-discipline)

        MicrokernelRates {
            gemm_gflops,
            trsm_gflops,
            syrk_gflops,
            chol_gflops,
            spmv_gbps,
            gemv_gbps,
            trisolve_gflops,
        }
    }

    /// Fold the measured rates into a host [`DeviceSpec`] the planners can
    /// price with. Compute throughput is the harmonic mean of the TRSM and
    /// SYRK rates (the two kernel classes [`CostEstimate`] sums), memory
    /// bandwidth is the measured SpMV stream rate; everything else keeps the
    /// nominal host's values (function-call "launch" overhead, concurrency,
    /// capacity — none of which the probe can observe better).
    pub fn host_spec(&self) -> DeviceSpec {
        let host = DeviceSpec::host();
        let hm = 2.0 / (1.0 / self.trsm_gflops + 1.0 / self.syrk_gflops);
        DeviceSpec {
            name: "calibrated-host",
            fp64_gflops: hm.max(1e-3),
            mem_bandwidth_gbps: self.spmv_gbps.max(1e-3),
            ..host
        }
    }

    /// Predicted host assembly seconds of one subdomain: each FLOP class at
    /// its own measured rate (sharper than [`CostEstimate::seconds_on`],
    /// which prices both classes at one rate).
    pub fn assembly_seconds(&self, est: &CostEstimate) -> f64 {
        est.trsm_flops / (self.trsm_gflops * 1e9) + est.syrk_flops / (self.syrk_gflops * 1e9)
    }

    /// Predicted host seconds of one apply-path kernel, each family at its
    /// own measured rate: `gemv` at streamed-matrix bandwidth, `spmm`
    /// (SpMV-shaped scatter/gather) at the binned-SpMV bandwidth,
    /// `trsm_sparse` at the latency-bound trisolve FLOP rate. Unknown
    /// families fall back to the [`host_spec`](Self::host_spec) duration
    /// model.
    pub fn apply_kernel_seconds(&self, c: &KernelCost) -> f64 {
        match c.label {
            "gemv" => c.bytes / (self.gemv_gbps * 1e9),
            "spmm" => c.bytes / (self.spmv_gbps * 1e9),
            "trsm_sparse" => c.flops / (self.trisolve_gflops * 1e9),
            _ => self.host_spec().kernel_seconds(c),
        }
    }

    /// Predicted host seconds of one **explicit** application (Eq. 12 GEMV),
    /// the measured-rate counterpart of
    /// [`ApplyEstimate::explicit_seconds_on`].
    pub fn explicit_apply_seconds(&self, est: &ApplyEstimate) -> f64 {
        est.explicit
            .iter()
            .map(|c| self.apply_kernel_seconds(c))
            .sum()
    }

    /// Predicted host seconds of one **implicit** application (the Eq. 11
    /// scatter / solve / solve / gather pipeline), the measured-rate
    /// counterpart of [`ApplyEstimate::implicit_seconds_on`].
    pub fn implicit_apply_seconds(&self, est: &ApplyEstimate) -> f64 {
        est.implicit
            .iter()
            .map(|c| self.apply_kernel_seconds(c))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_rates_match_host_spec() {
        let n = MicrokernelRates::nominal();
        let host = DeviceSpec::host();
        assert_eq!(n.gemm_gflops, host.fp64_gflops);
        assert_eq!(n.spmv_gbps, host.mem_bandwidth_gbps);
    }

    #[test]
    fn probe_produces_positive_finite_rates() {
        let r = MicrokernelRates::probe();
        for v in [
            r.gemm_gflops,
            r.trsm_gflops,
            r.syrk_gflops,
            r.chol_gflops,
            r.spmv_gbps,
            r.gemv_gbps,
            r.trisolve_gflops,
        ] {
            assert!(v.is_finite() && v > 0.0, "rate {v}");
        }
    }

    #[test]
    fn apply_pricing_uses_per_family_rates() {
        let r = MicrokernelRates {
            gemm_gflops: 1.0,
            trsm_gflops: 1.0,
            syrk_gflops: 1.0,
            chol_gflops: 1.0,
            spmv_gbps: 2.0,       // spmm bytes at 2 GB/s
            gemv_gbps: 4.0,       // gemv bytes at 4 GB/s
            trisolve_gflops: 0.5, // trisolve flops at 0.5 GFLOP/s
        };
        let est = crate::schedule::ApplyEstimate {
            index: 0,
            n_lambda: 1000,
            explicit: vec![KernelCost::gemv_of::<f64>(1000, 1000)],
            implicit: vec![
                KernelCost::spmm_of::<f64>(5000, 1),
                KernelCost::trsm_sparse_of::<f64>(40_000, 1),
                KernelCost::trsm_sparse_of::<f64>(40_000, 1),
                KernelCost::spmm_of::<f64>(5000, 1),
            ],
        };
        // gemv: 8 MB at 4 GB/s = 2 ms
        let exp = r.explicit_apply_seconds(&est);
        assert!((exp - 8e6 / 4e9).abs() < 1e-12, "explicit {exp}");
        // trisolves: 2 × 2·40_000 flops at 0.5 GFLOP/s = 3.2e-4 s; spmm
        // bytes priced at spmv_gbps
        let spmm_bytes: f64 = est.implicit[0].bytes;
        let want = 2.0 * spmm_bytes / 2e9 + 2.0 * (2.0 * 40_000.0) / 0.5e9;
        let imp = r.implicit_apply_seconds(&est);
        assert!((imp - want).abs() < 1e-12, "implicit {imp} want {want}");
    }

    /// The ROADMAP gate for this satellite: on the machine the tests run on,
    /// the calibrated apply predictions must track realized kernel times at
    /// least as well as the nominal host spec (which claims server-class
    /// rates and systematically under-predicts both the memory-bound GEMV
    /// and the latency-bound sparse trisolve).
    #[test]
    fn calibrated_apply_gap_no_worse_than_nominal() {
        let r = MicrokernelRates::probe();
        let host = DeviceSpec::host();

        // explicit apply: one dense GEMV, shape disjoint from the probe's
        let m = 512;
        let fmat = fill(m, m, 7);
        let x: Vec<f64> = (0..m).map(|i| (i % 9) as f64 * 0.25 - 1.0).collect(); // sc-analyze: allow(precision-discipline)
        let mut y = vec![0.0; m];
        let realized = best_of(3, || {
            sc_dense::gemv(1.0, fmat.as_ref(), &x, 0.0, &mut y);
        });
        let cost = KernelCost::gemv_of::<f64>(m, m);
        let cal = r.apply_kernel_seconds(&cost);
        let nom = host.kernel_seconds(&cost);
        assert!(
            (cal - realized).abs() <= (nom - realized).abs(),
            "gemv: calibrated {cal:.3e} vs nominal {nom:.3e}, realized {realized:.3e}"
        );

        // implicit apply inner kernels: forward + backward banded trisolve
        let nt = 15_000;
        let mut lt = Coo::new(nt, nt);
        for i in 0..nt {
            lt.push(i, i, 4.0);
            for d in [1usize, 2, 3, 4] {
                if i >= d {
                    lt.push(i, i - d, 0.04 * d as f64); // sc-analyze: allow(precision-discipline)
                }
            }
        }
        let lcsc = lt.to_csc();
        let rhs: Vec<f64> = (0..nt).map(|i| (i % 7) as f64 * 0.3 - 0.9).collect(); // sc-analyze: allow(precision-discipline)
        let mut xs = rhs.clone();
        let realized = best_of(3, || {
            xs.copy_from_slice(&rhs);
            sc_sparse::csc_lower_solve(&lcsc, &mut xs);
            sc_sparse::csc_lower_t_solve(&lcsc, &mut xs);
        });
        let cost = KernelCost::trsm_sparse_of::<f64>(lcsc.nnz(), 1);
        let cal = 2.0 * r.apply_kernel_seconds(&cost);
        let nom = 2.0 * host.kernel_seconds(&cost);
        assert!(
            (cal - realized).abs() <= (nom - realized).abs(),
            "trisolve: calibrated {cal:.3e} vs nominal {nom:.3e}, realized {realized:.3e}"
        );
    }

    #[test]
    fn host_spec_carries_measured_rates() {
        let r = MicrokernelRates {
            gemm_gflops: 20.0,
            trsm_gflops: 10.0,
            syrk_gflops: 30.0,
            chol_gflops: 15.0,
            spmv_gbps: 5.0,
            gemv_gbps: 4.0,
            trisolve_gflops: 2.0,
        };
        let spec = r.host_spec();
        assert_eq!(spec.name, "calibrated-host");
        // harmonic mean of 10 and 30 = 15
        assert!((spec.fp64_gflops - 15.0).abs() < 1e-12);
        assert_eq!(spec.mem_bandwidth_gbps, 5.0);
        // untouched fields keep the nominal host's values
        assert_eq!(spec.kernel_launch_us, DeviceSpec::host().kernel_launch_us);
    }

    #[test]
    fn assembly_seconds_prices_classes_separately() {
        let r = MicrokernelRates {
            gemm_gflops: 1.0,
            trsm_gflops: 1.0,
            syrk_gflops: 2.0,
            chol_gflops: 1.0,
            spmv_gbps: 1.0,
            gemv_gbps: 1.0,
            trisolve_gflops: 1.0,
        };
        let est = CostEstimate {
            index: 0,
            n_dofs: 10,
            n_lambda: 4,
            trsm_flops: 2e9,
            syrk_flops: 4e9,
            transfer_bytes: 0.0,
            temp_bytes: 0,
            exchange_bytes: 0.0,
            seconds: 0.0,
        };
        // 2e9 / 1 GFLOP/s + 4e9 / 2 GFLOP/s = 2 + 2 = 4 seconds
        assert!((r.assembly_seconds(&est) - 4.0).abs() < 1e-9);
    }
}
