//! The paper's primary contribution: **sparsity-utilizing explicit Schur
//! complement assembly** (`F̃ = (L⁻¹B̃ᵀ)ᵀ(L⁻¹B̃ᵀ)`, Eq. 14).
//!
//! Pipeline (paper §3):
//!
//! 1. [`stepped`] — permute the *columns* of `B̃ᵀ` so that column pivots
//!    descend left to right (the **stepped shape**). Rows are never permuted:
//!    that would interfere with the fill-reducing ordering of the factor.
//! 2. [`trsm`] — solve `L Y = B̃ᵀ` skipping the known-zero region above the
//!    pivots, by **RHS splitting** or **factor splitting** (with optional
//!    **pruning** of empty rows in the sub-diagonal factor blocks).
//! 3. [`syrk`] — compute `F̃ = YᵀY` skipping the same zero region, by
//!    **input splitting** or **output splitting**.
//! 4. un-permute the result back to the original multiplier ordering.
//!
//! All kernels are written against the [`exec::Exec`] backend trait, so the
//! same algorithm runs on the CPU ([`exec::CpuExec`]) and on the simulated
//! GPU ([`exec::GpuExec`]) — mirroring the paper's claim that the approach
//! only needs basic BLAS/sparse-BLAS routines available on any platform.

pub mod assemble;
pub mod batch;
pub mod calibrate;
pub mod exec;
pub mod schedule;
pub mod session;
pub mod sessioncache;
pub mod source;
pub mod stepped;
pub mod syrk;
pub mod trsm;
pub mod tune;

pub use assemble::{
    assemble_sc, assemble_sc_reference, assemble_sc_with_cache, ScConfig, ScParams,
};
pub use batch::{
    BatchItem, BatchItemOf, BatchReport, BatchResult, BatchResultOf, ClusterOptions, ClusterReport,
    ClusterResult, SubdomainTiming,
};
// Deprecated free-function drivers, re-exported for one release so old call
// sites migrate with a warning instead of a break. New code goes through
// `AssemblySession::assemble`.
#[allow(deprecated)]
pub use batch::{
    assemble_sc_batch, assemble_sc_batch_cluster, assemble_sc_batch_gpu,
    assemble_sc_batch_scheduled, assemble_sc_batch_with,
};
pub use calibrate::MicrokernelRates;
pub use exec::{CpuExec, Exec, GpuExec, RecordingExec};
pub use schedule::{
    estimate_apply, estimate_apply_of, estimate_cost, estimate_cost_of, plan_hybrid, plan_topology,
    plan_topology_by, ApplyEstimate, ArenaSim, ClusterPlan, ClusterPlanError, CostEstimate,
    DeviceSlot, Formulation, HybridChoice, HybridForce, HybridPlan, HybridPlanOptions,
    ScheduleOptions, ScheduledSpan, StreamPlan, StreamPolicy, TopoPlan, Topology,
};
// Deprecated two-level planner family, re-exported for one release so old
// call sites migrate with a warning instead of a break. New code plans over
// a `Topology` with `plan_topology`.
#[allow(deprecated)]
pub use schedule::{plan, plan_cluster, plan_cluster_spill};
pub use session::{
    AssemblyReport, AssemblyResult, AssemblySession, Backend, DeviceReport, HybridSummary,
    NodeReport, Precision, StreamLane, Target,
};
pub use sessioncache::{ContentHasher, SessionCache, SessionCacheStats};
pub use source::{BatchSource, IntoBatchSource, LazyBatch};
pub use stepped::{SteppedRhs, SteppedRhsOf};
pub use syrk::{run_syrk as run_syrk_variant, run_syrk_with_cache, SyrkVariant};
pub use trsm::{run_trsm as run_trsm_variant, run_trsm_with_cache, FactorStorage, TrsmVariant};
pub use tune::{
    resolve_block, resolve_block_cuts, resolve_block_cuts_cols, BlockCutsCache, BlockParam,
};
