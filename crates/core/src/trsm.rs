//! Sparsity-utilizing TRSM on the stepped RHS (paper §3.2).
//!
//! All variants solve `L Y = B̃ᵀ` in place on a dense `Y` that starts as the
//! dense expansion of the stepped `B̃ᵀ`. The baseline ([`TrsmVariant::Plain`])
//! is the original algorithm of \[9\]: one library TRSM over the full factor.
//! The optimized variants skip the zero region above the column pivots:
//!
//! - **RHS splitting**: column blocks of `Y` are solved against the trailing
//!   subfactor below the block's first pivot only;
//! - **factor splitting**: the factor is blocked along the diagonal; each
//!   step runs a small TRSM on the diagonal block restricted to the currently
//!   active RHS columns, then a GEMM for the sub-diagonal block — with
//!   optional **pruning** (compacting empty rows out of the sub-diagonal
//!   block before a dense GEMM).

use crate::exec::Exec;
use crate::stepped::SteppedRhsOf;
use crate::tune::{col_cuts, row_cuts, BlockCutsCache, BlockParam};
use sc_dense::{MatMutOf, MatOf, Scalar, Trans};
use sc_sparse::CscOf;

/// Storage format for the triangular factor inside TRSM kernels
/// ("factor storage" in the paper's §3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FactorStorage {
    /// Keep factor (blocks) in CSC and call sparse kernels. Optimal for the
    /// very sparse 2D factors.
    Sparse,
    /// Densify the factor (blocks) and call dense kernels. Optimal in 3D.
    Dense,
}

/// TRSM algorithm selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrsmVariant {
    /// Original algorithm of \[9\]: single TRSM over the whole factor.
    Plain,
    /// RHS splitting with the given column-block parameter.
    RhsSplit(BlockParam),
    /// Factor splitting with the given factor-block parameter; `prune`
    /// compacts empty rows out of sub-diagonal blocks before the GEMM.
    FactorSplit {
        /// Diagonal block partition.
        block: BlockParam,
        /// Enable empty-row pruning for the GEMM update.
        prune: bool,
    },
}

/// Run the selected TRSM variant: on return `y` holds `L⁻¹ B̃ᵀ` (stepped
/// column order). `l` is the CSC factor (diag-first columns).
pub fn run_trsm<S: Scalar, E: Exec<S>>(
    exec: &mut E,
    l: &CscOf<S>,
    stepped: &SteppedRhsOf<S>,
    storage: FactorStorage,
    variant: TrsmVariant,
    y: &mut MatOf<S>,
) {
    run_trsm_with_cache(exec, l, stepped, storage, variant, y, None)
}

/// [`run_trsm`] with an optional shared block-cut memo table (used by the
/// batched multi-subdomain driver so equal-shape subdomains resolve their
/// block partitions once).
pub fn run_trsm_with_cache<S: Scalar, E: Exec<S>>(
    exec: &mut E,
    l: &CscOf<S>,
    stepped: &SteppedRhsOf<S>,
    storage: FactorStorage,
    variant: TrsmVariant,
    y: &mut MatOf<S>,
    cache: Option<&BlockCutsCache>,
) {
    let n = l.ncols();
    assert_eq!(y.nrows(), n, "Y row mismatch");
    assert_eq!(y.ncols(), stepped.ncols(), "Y column mismatch");
    match variant {
        TrsmVariant::Plain => trsm_plain(exec, l, storage, y.as_mut()),
        TrsmVariant::RhsSplit(block) => trsm_rhs_split(exec, l, stepped, storage, block, y, cache),
        TrsmVariant::FactorSplit { block, prune } => {
            trsm_factor_split(exec, l, stepped, storage, block, prune, y, cache)
        }
    }
}

fn trsm_plain<S: Scalar, E: Exec<S>>(
    exec: &mut E,
    l: &CscOf<S>,
    storage: FactorStorage,
    y: MatMutOf<'_, S>,
) {
    match storage {
        FactorStorage::Sparse => exec.trsm_sparse(l, y),
        FactorStorage::Dense => {
            let ld = l.to_dense();
            exec.gather(l.nnz()); // densification traffic
            exec.trsm_dense(ld.as_ref(), y);
        }
    }
}

/// RHS splitting (paper Figure 3a): each column block is solved with the
/// trailing subfactor below its first pivot.
fn trsm_rhs_split<S: Scalar, E: Exec<S>>(
    exec: &mut E,
    l: &CscOf<S>,
    stepped: &SteppedRhsOf<S>,
    storage: FactorStorage,
    block: BlockParam,
    y: &mut MatOf<S>,
    cache: Option<&BlockCutsCache>,
) {
    let n = l.ncols();
    let m = stepped.ncols();
    let cuts = col_cuts(cache, block, m, &stepped.pivots, n);
    // Dense factor materialized once; subfactors are views (leading
    // dimension arithmetic — free, as the paper notes).
    let ld = match storage {
        FactorStorage::Dense => {
            exec.gather(l.nnz());
            Some(l.to_dense())
        }
        FactorStorage::Sparse => None,
    };
    for w in cuts.windows(2) {
        let (c0, c1) = (w[0], w[1]);
        // first pivot in the block bounds the subfactor
        let p = stepped.pivots[c0];
        if p >= n {
            break; // empty columns (and all following) need no work
        }
        let ysub = y.as_mut().into_sub(p, c0, n - p, c1 - c0);
        match (&ld, storage) {
            (Some(ld), FactorStorage::Dense) => {
                exec.trsm_dense(ld.as_ref().sub(p, p, n - p, n - p), ysub);
            }
            (_, FactorStorage::Sparse) => {
                // "We must manually extract the sparse subfactor before each
                // TRSM if we use a sparse factor." (§3.2)
                let sub = l.trailing_submatrix(p, p, n);
                exec.gather(sub.nnz());
                exec.trsm_sparse(&sub, ysub);
            }
            _ => unreachable!(),
        }
    }
}

/// Factor splitting (paper Figure 3b): blocked forward substitution with a
/// TRSM on each diagonal block (restricted to active RHS columns) and a GEMM
/// for the sub-diagonal block, optionally pruned.
#[allow(clippy::too_many_arguments)]
fn trsm_factor_split<S: Scalar, E: Exec<S>>(
    exec: &mut E,
    l: &CscOf<S>,
    stepped: &SteppedRhsOf<S>,
    storage: FactorStorage,
    block: BlockParam,
    prune: bool,
    y: &mut MatOf<S>,
    cache: Option<&BlockCutsCache>,
) {
    let n = l.ncols();
    let cuts = row_cuts(cache, block, n, &stepped.pivots);
    for w in cuts.windows(2) {
        let (r0, r1) = (w[0], w[1]);
        // active columns: pivots strictly below r1 ("the width of the RHS
        // submatrix is dictated by the right-most non-zero in the top RHS
        // block")
        let width = stepped.active_width(r1);
        if width == 0 {
            continue;
        }
        // --- diagonal block TRSM on Y[r0..r1, 0..width] ---
        let dblock = l.block(r0, r1, r0, r1);
        {
            let ytop = y.as_mut().into_sub(r0, 0, r1 - r0, width);
            match storage {
                FactorStorage::Sparse => exec.trsm_sparse(&dblock, ytop),
                FactorStorage::Dense => {
                    exec.gather(dblock.nnz());
                    let dd = dblock.to_dense();
                    exec.trsm_dense(dd.as_ref(), ytop);
                }
            }
        }
        if r1 == n {
            continue;
        }
        // --- sub-diagonal block GEMM: Y[r1.., 0..width] -= S * Y[r0..r1, ..] ---
        let sblock = l.block(r1, n, r0, r1);
        if sblock.nnz() == 0 {
            continue;
        }
        if prune {
            // compact the empty rows out of S (paper: "pruning", analogous to
            // CHOLMOD's supernodal row compression)
            let live = sblock.nonempty_rows();
            exec.gather(sblock.nnz() + live.len());
            let sg = sblock.gather_rows_dense(&live);
            let mut t = MatOf::<S>::zeros(live.len(), width);
            {
                let ytop = y.as_ref().sub(r0, 0, r1 - r0, width);
                exec.gemm(
                    S::ONE,
                    sg.as_ref(),
                    Trans::No,
                    ytop,
                    Trans::No,
                    S::ZERO,
                    t.as_mut(),
                );
            }
            // scatter-subtract the compacted rows back into Y
            exec.gather(live.len() * width);
            for (k, &row) in live.iter().enumerate() {
                let g = r1 + row;
                for c in 0..width {
                    y[(g, c)] -= t[(k, c)];
                }
            }
        } else {
            // A column-major matrix cannot hand out disjoint mutable row
            // windows safely; copy the (small) top panel, as real GPU
            // implementations do when packing the TRSM panel.
            let ytop = y.submatrix(r0, 0, r1 - r0, width);
            exec.gather((r1 - r0) * width);
            let ybot = y.as_mut().into_sub(r1, 0, n - r1, width);
            match storage {
                FactorStorage::Sparse => exec.spmm(-S::ONE, &sblock, ytop.as_ref(), S::ONE, ybot),
                FactorStorage::Dense => {
                    exec.gather(sblock.nnz());
                    let sd = sblock.to_dense();
                    exec.gemm(
                        -S::ONE,
                        sd.as_ref(),
                        Trans::No,
                        ytop.as_ref(),
                        Trans::No,
                        S::ONE,
                        ybot,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::CpuExec;
    use crate::stepped::SteppedRhs;
    use sc_dense::Mat;
    use sc_sparse::{Coo, Csc, Perm};

    /// Random-ish sparse SPD lower factor with controlled density.
    fn sparse_factor(n: usize, seed: u64) -> Csc {
        let mut state = seed | 1;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut c = Coo::new(n, n);
        for j in 0..n {
            c.push(j, j, 2.0 + rnd());
            for i in (j + 1)..n {
                if rnd() < 0.15 {
                    c.push(i, j, rnd() - 0.5);
                }
            }
        }
        c.to_csc()
    }

    /// Stepped RHS with roughly uniform pivots.
    fn stepped_rhs(n: usize, m: usize, seed: u64) -> SteppedRhs {
        let mut state = seed | 1;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut c = Coo::new(n, m);
        for j in 0..m {
            let pivot = ((rnd() * n as f64) as usize).min(n - 1);
            c.push(pivot, j, 1.0);
            // a few extra entries below the pivot
            for i in (pivot + 1)..n {
                if rnd() < 0.1 {
                    c.push(i, j, rnd() - 0.5);
                }
            }
        }
        // scramble columns to exercise the permutation
        let mut order: Vec<usize> = (0..m).collect();
        for k in (1..m).rev() {
            let r = ((rnd() * (k + 1) as f64) as usize).min(k);
            order.swap(k, r);
        }
        let bt = c.to_csc().permute_cols(&Perm::from_old_of_new(order));
        SteppedRhs::new(&bt)
    }

    fn reference_solution(l: &Csc, stepped: &SteppedRhs) -> Mat {
        let mut y = stepped.to_dense();
        let ld = l.to_dense();
        sc_dense::trsm_lower_left(ld.as_ref(), y.as_mut());
        y
    }

    fn check_variant(variant: TrsmVariant, storage: FactorStorage) {
        let n = 37;
        let m = 19;
        let l = sparse_factor(n, 11);
        let stepped = stepped_rhs(n, m, 23);
        let expect = reference_solution(&l, &stepped);
        let mut y = stepped.to_dense();
        run_trsm(&mut CpuExec, &l, &stepped, storage, variant, &mut y);
        let d = sc_dense::max_abs_diff(y.as_ref(), expect.as_ref());
        assert!(d < 1e-9, "{variant:?} {storage:?}: diff {d}");
    }

    #[test]
    fn plain_matches_reference_both_storages() {
        check_variant(TrsmVariant::Plain, FactorStorage::Sparse);
        check_variant(TrsmVariant::Plain, FactorStorage::Dense);
    }

    #[test]
    fn rhs_split_matches_reference() {
        for block in [
            BlockParam::Size(4),
            BlockParam::Size(64),
            BlockParam::Count(3),
        ] {
            check_variant(TrsmVariant::RhsSplit(block), FactorStorage::Sparse);
            check_variant(TrsmVariant::RhsSplit(block), FactorStorage::Dense);
        }
    }

    #[test]
    fn factor_split_matches_reference() {
        for block in [
            BlockParam::Size(5),
            BlockParam::Size(16),
            BlockParam::Count(2),
        ] {
            for prune in [false, true] {
                check_variant(
                    TrsmVariant::FactorSplit { block, prune },
                    FactorStorage::Sparse,
                );
                check_variant(
                    TrsmVariant::FactorSplit { block, prune },
                    FactorStorage::Dense,
                );
            }
        }
    }

    #[test]
    fn block_size_one_still_correct() {
        check_variant(
            TrsmVariant::FactorSplit {
                block: BlockParam::Size(1),
                prune: true,
            },
            FactorStorage::Dense,
        );
        check_variant(
            TrsmVariant::RhsSplit(BlockParam::Size(1)),
            FactorStorage::Sparse,
        );
    }

    #[test]
    fn empty_rhs_is_noop() {
        let n = 10;
        let l = sparse_factor(n, 3);
        let bt = Csc::zeros(n, 0);
        let stepped = SteppedRhs::new(&bt);
        let mut y = Mat::zeros(n, 0);
        run_trsm(
            &mut CpuExec,
            &l,
            &stepped,
            FactorStorage::Sparse,
            TrsmVariant::RhsSplit(BlockParam::Size(10)),
            &mut y,
        );
    }
}
