//! The complete explicit Schur complement assembler (paper §3).
//!
//! Ties together the stepped permutation, the TRSM variant, the SYRK variant
//! and the final un-permutation into the original multiplier ordering:
//!
//! ```text
//! F̃ = unpermute( (L⁻¹ · stepped(B̃ᵀ))ᵀ (L⁻¹ · stepped(B̃ᵀ)) )
//! ```

use crate::exec::Exec;
use crate::stepped::SteppedRhsOf;
use crate::syrk::{run_syrk_with_cache, SyrkVariant};
use crate::trsm::{run_trsm_with_cache, FactorStorage, TrsmVariant};
use crate::tune::BlockCutsCache;
use sc_dense::{MatOf, Scalar};
use sc_sparse::CscOf;

/// Fully resolved assembler parameters: one entry per knob the paper tunes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScParams {
    /// TRSM algorithm (plain / RHS split / factor split + pruning).
    pub trsm: TrsmVariant,
    /// SYRK algorithm (plain / input split / output split).
    pub syrk: SyrkVariant,
    /// Factor storage inside TRSM kernels.
    pub factor_storage: FactorStorage,
    /// Apply the stepped column permutation (disable only for ablation — the
    /// splitting variants still work, they just skip nothing).
    pub stepped_permutation: bool,
}

impl ScParams {
    /// The baseline of \[9\]: no splitting, no stepped permutation.
    pub fn original(storage: FactorStorage) -> Self {
        ScParams {
            trsm: TrsmVariant::Plain,
            syrk: SyrkVariant::Plain,
            factor_storage: storage,
            stepped_permutation: false,
        }
    }

    /// The paper's optimized configuration with Table 1 defaults for the
    /// given platform/dimension (`gpu`, `three_d` flags).
    pub fn optimized(gpu: bool, three_d: bool) -> Self {
        use crate::tune::table1_defaults as t;
        let (trsm_block, syrk_block) = match (gpu, three_d) {
            (false, false) => (t::TRSM_FACTOR_CPU_2D, t::SYRK_INPUT_CPU_2D),
            (false, true) => (t::TRSM_FACTOR_CPU_3D, t::SYRK_INPUT_CPU_3D),
            (true, false) => (t::TRSM_FACTOR_GPU_2D, t::SYRK_INPUT_GPU_2D),
            (true, true) => (t::TRSM_FACTOR_GPU_3D, t::SYRK_INPUT_GPU_3D),
        };
        ScParams {
            trsm: TrsmVariant::FactorSplit {
                block: trsm_block,
                // pruning always helps large factors (paper §4.1); in 2D the
                // factor blocks stay sparse so pruning is a no-op cost-wise
                prune: true,
            },
            syrk: SyrkVariant::InputSplit(syrk_block),
            factor_storage: if three_d {
                FactorStorage::Dense
            } else {
                FactorStorage::Sparse
            },
            stepped_permutation: true,
        }
    }
}

/// Assembler configuration: either every knob fixed up front, or a
/// per-subdomain Table-1-style automatic selection (the default).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ScConfig {
    /// Use exactly these parameters for every subdomain.
    Fixed(ScParams),
    /// Pick `TrsmVariant`/`SyrkVariant`/`FactorStorage` per subdomain from
    /// the factor's density and the problem size, mirroring how the paper's
    /// Table 1 splits its recommendations by platform (CPU/GPU) and
    /// dimension (2D/3D). The platform comes from the executing backend
    /// ([`Exec::is_gpu`]); "2D-vs-3D" is decided
    /// from the factor fill (3D nested-dissection factors are far denser
    /// than 2D ones), and very small subdomains fall back to the plain
    /// kernels, whose launch overhead beats splitting at those sizes.
    #[default]
    Auto,
}

/// Density of a lower-triangular CSC factor relative to a full triangle.
fn factor_density<S: Scalar>(l: &CscOf<S>) -> f64 {
    let n = l.ncols();
    if n == 0 {
        return 0.0;
    }
    let tri = n as f64 * (n as f64 + 1.0) / 2.0; // sc-analyze: allow(precision-discipline)
    l.nnz() as f64 / tri // sc-analyze: allow(precision-discipline)
}

/// 2D nested-dissection factors stay a few percent dense; 3D ones fill an
/// order of magnitude more. This threshold separates the two regimes on the
/// workspace's heat-transfer ladders.
const AUTO_THREE_D_DENSITY: f64 = 0.15;
/// Below these sizes the splitting variants cannot amortize their extra
/// kernel launches (the left branch of the paper's Figure 5 U-curve).
const AUTO_MIN_DOFS: usize = 96;
const AUTO_MIN_LAMBDA: usize = 8;

impl ScConfig {
    /// The baseline of \[9\]: no splitting, no stepped permutation.
    pub fn original(storage: FactorStorage) -> Self {
        ScConfig::Fixed(ScParams::original(storage))
    }

    /// The paper's optimized configuration with Table 1 defaults for the
    /// given platform/dimension (`gpu`, `three_d` flags).
    pub fn optimized(gpu: bool, three_d: bool) -> Self {
        ScConfig::Fixed(ScParams::optimized(gpu, three_d))
    }

    /// Resolve to concrete parameters for one subdomain. `gpu` is the
    /// executing platform ([`ScConfig::Fixed`] ignores it; callers inside
    /// the pipeline pass [`Exec::is_gpu`]).
    pub fn resolve<S: Scalar>(&self, gpu: bool, l: &CscOf<S>, bt: &CscOf<S>) -> ScParams {
        match self {
            ScConfig::Fixed(params) => *params,
            ScConfig::Auto => {
                let n = l.ncols();
                let m = bt.ncols();
                let three_d_like = factor_density(l) > AUTO_THREE_D_DENSITY;
                if n < AUTO_MIN_DOFS || m < AUTO_MIN_LAMBDA {
                    ScParams {
                        trsm: TrsmVariant::Plain,
                        syrk: SyrkVariant::Plain,
                        factor_storage: if three_d_like {
                            FactorStorage::Dense
                        } else {
                            FactorStorage::Sparse
                        },
                        // the stepped permutation is a cheap relabeling and
                        // never hurts, keep it on
                        stepped_permutation: true,
                    }
                } else {
                    ScParams::optimized(gpu, three_d_like)
                }
            }
        }
    }
}

impl From<ScParams> for ScConfig {
    fn from(params: ScParams) -> Self {
        ScConfig::Fixed(params)
    }
}

/// Assemble the dense symmetric `F̃ = B̃ L⁻ᵀ L⁻¹ B̃ᵀ` on the given backend.
///
/// Inputs:
/// - `l` — Cholesky factor of the regularized subdomain matrix (CSC,
///   diag-first), in fill-reducing order;
/// - `bt` — `B̃ᵀ` with rows **already permuted** into the factor's order.
///
/// The result is indexed by the original (unstepped) multiplier order and is
/// fully symmetric.
pub fn assemble_sc<S: Scalar, E: Exec<S>>(
    exec: &mut E,
    l: &CscOf<S>,
    bt: &CscOf<S>,
    cfg: &ScConfig,
) -> MatOf<S> {
    assemble_sc_with_cache(exec, l, bt, cfg, None)
}

/// [`assemble_sc`] with an optional shared [`BlockCutsCache`]; the batched
/// driver passes one cache for the whole cluster so equal-shape subdomains
/// resolve their block partitions once.
pub fn assemble_sc_with_cache<S: Scalar, E: Exec<S>>(
    exec: &mut E,
    l: &CscOf<S>,
    bt: &CscOf<S>,
    cfg: &ScConfig,
    cache: Option<&BlockCutsCache>,
) -> MatOf<S> {
    let n = l.ncols();
    assert_eq!(bt.nrows(), n, "B̃ᵀ rows must live in factor space");
    let m = bt.ncols();
    let params = cfg.resolve(exec.is_gpu(), l, bt);

    let stepped = if params.stepped_permutation {
        SteppedRhsOf::new(bt)
    } else {
        SteppedRhsOf {
            bt: bt.clone(),
            pivots: sc_sparse::pattern::pivots_or_end(bt),
            col_perm: sc_sparse::Perm::identity(m),
        }
    };
    // NOTE: without the stepped permutation the pivots may not be sorted;
    // the splitting kernels require sorted pivots, so fall back to plain
    // variants in that case (this is what "original" does anyway).
    let sorted = stepped.pivots.windows(2).all(|w| w[0] <= w[1]);
    let trsm_variant = if sorted {
        params.trsm
    } else {
        TrsmVariant::Plain
    };
    let syrk_variant = if sorted {
        params.syrk
    } else {
        SyrkVariant::Plain
    };

    // dense RHS expansion (the TRSM is in-place on the dense Y)
    let mut y = stepped.to_dense();
    exec.gather(stepped.bt.nnz());

    run_trsm_with_cache(
        exec,
        l,
        &stepped,
        params.factor_storage,
        trsm_variant,
        &mut y,
        cache,
    );

    let mut f = MatOf::<S>::zeros(m, m);
    run_syrk_with_cache(exec, &y, &stepped, syrk_variant, &mut f, cache);
    f.symmetrize_from_lower();

    // back to original multiplier ordering (the "final phase" permutation)
    exec.gather(m * m);
    stepped.unpermute_symmetric(&f)
}

/// Dense reference: `F̃ = B̃ K_reg⁻¹ B̃ᵀ` computed with dense kernels from the
/// full matrix (not the factor). Test oracle.
pub fn assemble_sc_reference(
    k_reg: &sc_sparse::Csc,
    bt_unpermuted: &sc_sparse::Csc,
) -> sc_dense::Mat {
    let n = k_reg.ncols();
    assert_eq!(bt_unpermuted.nrows(), n);
    let mut l = k_reg.to_dense();
    sc_dense::cholesky_in_place(l.as_mut()).expect("reference factorization failed");
    let mut y = bt_unpermuted.to_dense();
    sc_dense::trsm_lower_left(l.as_ref(), y.as_mut());
    let m = bt_unpermuted.ncols();
    let mut f = sc_dense::Mat::zeros(m, m);
    sc_dense::syrk_t(1.0, y.as_ref(), 0.0, f.as_mut());
    f.symmetrize_from_lower();
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{CpuExec, GpuExec};
    use crate::tune::BlockParam;
    use sc_dense::Mat;
    use sc_factor::{CholOptions, Engine, SparseCholesky};
    use sc_gpu::{Device, DeviceSpec, GpuKernels};
    use sc_order::Ordering;
    use sc_sparse::{Coo, Csc};

    /// SPD matrix: 2D Laplacian + shift.
    fn spd_matrix(nx: usize) -> Csc {
        let n = nx * nx;
        let idx = |x: usize, y: usize| y * nx + x;
        let mut c = Coo::new(n, n);
        for y in 0..nx {
            for x in 0..nx {
                let v = idx(x, y);
                c.push(v, v, 4.05);
                if x > 0 {
                    c.push(v, idx(x - 1, y), -1.0);
                }
                if x + 1 < nx {
                    c.push(v, idx(x + 1, y), -1.0);
                }
                if y > 0 {
                    c.push(v, idx(x, y - 1), -1.0);
                }
                if y + 1 < nx {
                    c.push(v, idx(x, y + 1), -1.0);
                }
            }
        }
        c.to_csc()
    }

    /// Boundary-ish B̃ᵀ: multipliers touch scattered dofs.
    fn gluing(n: usize, m: usize) -> Csc {
        let mut c = Coo::new(n, m);
        for j in 0..m {
            let d = (j * 7919) % n;
            c.push(d, j, if j.is_multiple_of(2) { 1.0 } else { -1.0 });
        }
        c.to_csc()
    }

    fn assemble_with(cfg: &ScConfig, nx: usize, m: usize) -> (Mat, Mat) {
        let k = spd_matrix(nx);
        let n = k.ncols();
        let bt = gluing(n, m);
        let chol = SparseCholesky::factorize(
            &k,
            CholOptions {
                ordering: Ordering::NestedDissection,
                engine: Engine::Simplicial,
            },
        )
        .unwrap();
        let l = chol.factor_csc();
        let bt_perm = bt.permute_rows(chol.perm());
        let f = assemble_sc(&mut CpuExec, &l, &bt_perm, cfg);
        let fref = assemble_sc_reference(&k, &bt);
        (f, fref)
    }

    #[test]
    fn original_config_matches_reference() {
        for storage in [FactorStorage::Sparse, FactorStorage::Dense] {
            let (f, fref) = assemble_with(&ScConfig::original(storage), 7, 12);
            assert!(sc_dense::max_abs_diff(f.as_ref(), fref.as_ref()) < 1e-9);
        }
    }

    #[test]
    fn optimized_configs_match_reference() {
        for (gpu, three_d) in [(false, false), (false, true), (true, false), (true, true)] {
            let (f, fref) = assemble_with(&ScConfig::optimized(gpu, three_d), 7, 12);
            assert!(
                sc_dense::max_abs_diff(f.as_ref(), fref.as_ref()) < 1e-9,
                "gpu={gpu} 3d={three_d}"
            );
        }
    }

    #[test]
    fn all_variant_combinations_match_reference() {
        let trsms = [
            TrsmVariant::Plain,
            TrsmVariant::RhsSplit(BlockParam::Size(8)),
            TrsmVariant::FactorSplit {
                block: BlockParam::Size(10),
                prune: false,
            },
            TrsmVariant::FactorSplit {
                block: BlockParam::Size(10),
                prune: true,
            },
        ];
        let syrks = [
            SyrkVariant::Plain,
            SyrkVariant::InputSplit(BlockParam::Size(9)),
            SyrkVariant::OutputSplit(BlockParam::Size(5)),
        ];
        for trsm in trsms {
            for syrk in syrks {
                for storage in [FactorStorage::Sparse, FactorStorage::Dense] {
                    let cfg = ScConfig::Fixed(ScParams {
                        trsm,
                        syrk,
                        factor_storage: storage,
                        stepped_permutation: true,
                    });
                    let (f, fref) = assemble_with(&cfg, 6, 10);
                    let d = sc_dense::max_abs_diff(f.as_ref(), fref.as_ref());
                    assert!(d < 1e-9, "{trsm:?} {syrk:?} {storage:?}: {d}");
                }
            }
        }
    }

    #[test]
    fn balanced_splitting_matches_reference() {
        // the paper's footnote-3 non-uniform (equal-FLOP) partitioning must
        // be numerically identical to the uniform variants
        for count in [1usize, 3, 7] {
            let cfg = ScConfig::Fixed(ScParams {
                trsm: TrsmVariant::FactorSplit {
                    block: BlockParam::Balanced(count),
                    prune: true,
                },
                syrk: SyrkVariant::InputSplit(BlockParam::Balanced(count)),
                factor_storage: FactorStorage::Dense,
                stepped_permutation: true,
            });
            let (f, fref) = assemble_with(&cfg, 7, 13);
            let d = sc_dense::max_abs_diff(f.as_ref(), fref.as_ref());
            assert!(d < 1e-9, "balanced count {count}: {d}");
        }
        // column-dimension balanced splits (RHS / output splitting)
        let cfg = ScConfig::Fixed(ScParams {
            trsm: TrsmVariant::RhsSplit(BlockParam::Balanced(4)),
            syrk: SyrkVariant::OutputSplit(BlockParam::Balanced(3)),
            factor_storage: FactorStorage::Sparse,
            stepped_permutation: true,
        });
        let (f, fref) = assemble_with(&cfg, 6, 11);
        assert!(sc_dense::max_abs_diff(f.as_ref(), fref.as_ref()) < 1e-9);
    }

    #[test]
    fn gpu_backend_matches_cpu_and_advances_timeline() {
        let k = spd_matrix(7);
        let bt = gluing(k.ncols(), 15);
        let chol = SparseCholesky::factorize(&k, CholOptions::default()).unwrap();
        let l = chol.factor_csc();
        let bt_perm = bt.permute_rows(chol.perm());
        let cfg = ScConfig::optimized(true, false);
        let f_cpu = assemble_sc(&mut CpuExec, &l, &bt_perm, &cfg);

        let dev = Device::new(DeviceSpec::a100(), 1);
        let kernels = GpuKernels::new(dev.stream(0));
        let mut gpu = GpuExec::new(&kernels);
        let f_gpu = assemble_sc(&mut gpu, &l, &bt_perm, &cfg);
        assert_eq!(f_cpu, f_gpu, "backends must agree bitwise");
        assert!(dev.synchronize() > 0.0);
    }

    #[test]
    fn optimized_gpu_time_beats_original_for_large_stepped_inputs() {
        // the paper's headline effect, on the simulator: with a large
        // subdomain the optimized config must be faster in simulated time
        let k = spd_matrix(24); // 576 dofs
        let bt = gluing(k.ncols(), 90);
        let chol = SparseCholesky::factorize(&k, CholOptions::default()).unwrap();
        let l = chol.factor_csc();
        let bt_perm = bt.permute_rows(chol.perm());

        let dev = Device::new(DeviceSpec::a100(), 1);
        let kernels = GpuKernels::new(dev.stream(0));

        let t0 = dev.synchronize();
        let mut gpu = GpuExec::new(&kernels);
        assemble_sc(
            &mut gpu,
            &l,
            &bt_perm,
            &ScConfig::original(FactorStorage::Dense),
        );
        let t_orig = dev.synchronize() - t0;

        let t1 = dev.synchronize();
        let mut gpu = GpuExec::new(&kernels);
        assemble_sc(&mut gpu, &l, &bt_perm, &ScConfig::optimized(true, false));
        let t_opt = dev.synchronize() - t1;
        assert!(
            t_opt < t_orig,
            "optimized {t_opt} should beat original {t_orig}"
        );
    }

    #[test]
    fn zero_lambda_subdomain_yields_empty_f() {
        // n_lambda == 0: B̃ᵀ has zero columns, F̃ must be a clean 0×0 matrix
        // under every variant combination and on both backends
        let k = spd_matrix(5);
        let chol = SparseCholesky::factorize(&k, CholOptions::default()).unwrap();
        let l = chol.factor_csc();
        let bt = Csc::zeros(l.ncols(), 0);
        for cfg in [
            ScConfig::original(FactorStorage::Sparse),
            ScConfig::original(FactorStorage::Dense),
            ScConfig::optimized(false, false),
            ScConfig::optimized(true, true),
            ScConfig::Auto,
        ] {
            let f = assemble_sc(&mut CpuExec, &l, &bt, &cfg);
            assert_eq!((f.nrows(), f.ncols()), (0, 0), "{cfg:?}");
        }
        let dev = Device::new(DeviceSpec::a100(), 1);
        let kernels = GpuKernels::new(dev.stream(0));
        let mut gpu = GpuExec::new(&kernels);
        let f = assemble_sc(&mut gpu, &l, &bt, &ScConfig::optimized(true, false));
        assert_eq!((f.nrows(), f.ncols()), (0, 0));
    }

    #[test]
    fn zero_dof_subdomain_yields_zero_f() {
        // degenerate 0×0 factor with multipliers attached to nothing: F̃ is
        // the m×m zero matrix (B̃ K⁺ B̃ᵀ over an empty dof space)
        let l = Csc::zeros(0, 0);
        let bt = Csc::zeros(0, 3);
        for cfg in [
            ScConfig::original(FactorStorage::Dense),
            ScConfig::optimized(false, true),
            ScConfig::Auto,
        ] {
            let f = assemble_sc(&mut CpuExec, &l, &bt, &cfg);
            assert_eq!((f.nrows(), f.ncols()), (3, 3), "{cfg:?}");
            for j in 0..3 {
                for i in 0..3 {
                    assert_eq!(f[(i, j)], 0.0, "{cfg:?} at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn single_column_bt_matches_reference() {
        let (f, fref) = assemble_with(&ScConfig::optimized(false, false), 6, 1);
        assert_eq!((f.nrows(), f.ncols()), (1, 1));
        assert!(sc_dense::max_abs_diff(f.as_ref(), fref.as_ref()) < 1e-9);
    }

    #[test]
    fn auto_config_matches_reference_and_adapts() {
        let (f, fref) = assemble_with(&ScConfig::Auto, 7, 12);
        assert!(sc_dense::max_abs_diff(f.as_ref(), fref.as_ref()) < 1e-9);
        // tiny subdomain resolves to plain kernels; a large one to splitting
        let k_small = spd_matrix(4);
        let chol = SparseCholesky::factorize(&k_small, CholOptions::default()).unwrap();
        let bt_small = gluing(k_small.ncols(), 3);
        let p_small = ScConfig::Auto.resolve(false, &chol.factor_csc(), &bt_small);
        assert_eq!(p_small.trsm, TrsmVariant::Plain);
        assert_eq!(p_small.syrk, SyrkVariant::Plain);
        let k_big = spd_matrix(16); // 256 dofs
        let chol = SparseCholesky::factorize(&k_big, CholOptions::default()).unwrap();
        let bt_big = gluing(k_big.ncols(), 40);
        let p_big = ScConfig::Auto.resolve(true, &chol.factor_csc(), &bt_big);
        assert!(
            matches!(p_big.trsm, TrsmVariant::FactorSplit { .. }),
            "large subdomains must use splitting, got {:?}",
            p_big.trsm
        );
        assert!(p_big.stepped_permutation);
    }

    #[test]
    fn result_is_symmetric_spd() {
        let (f, _) = assemble_with(&ScConfig::optimized(false, true), 8, 14);
        let m = f.nrows();
        for i in 0..m {
            for j in 0..m {
                assert!((f[(i, j)] - f[(j, i)]).abs() < 1e-12);
            }
        }
        let mut chol = f.clone();
        assert!(
            sc_dense::cholesky_in_place(chol.as_mut()).is_ok(),
            "SC must be SPD for this B"
        );
    }
}
