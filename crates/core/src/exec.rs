//! Execution backend abstraction: the same splitting algorithms run on the
//! CPU and on the simulated GPU, in either working precision.
//!
//! The trait is generic over the element type `S` ([`Scalar`], `f32` or
//! `f64`) with `f64` as the default parameter, so every pre-existing
//! `impl Exec`-consuming call site keeps compiling (and keeps its bitwise
//! behaviour) while the mixed-precision session path instantiates the same
//! backends at `f32`.

use sc_dense::{MatMutOf, MatRefOf, Scalar, Trans};
use sc_gpu::{GpuKernels, KernelCost, SlotAccess};
use sc_sparse::CscOf;

/// Backend kernel set used by the TRSM/SYRK splitting algorithms.
pub trait Exec<S: Scalar = f64> {
    /// True when this backend models the GPU platform — [`ScConfig::Auto`]
    /// resolves its Table-1-style defaults against this flag.
    ///
    /// [`ScConfig::Auto`]: crate::assemble::ScConfig::Auto
    fn is_gpu(&self) -> bool {
        false
    }
    /// Dense lower-triangular solve `L X = B`, in place.
    fn trsm_dense(&mut self, l: MatRefOf<'_, S>, b: MatMutOf<'_, S>);
    /// Sparse lower-triangular solve `L X = B`, in place.
    fn trsm_sparse(&mut self, l: &CscOf<S>, b: MatMutOf<'_, S>);
    /// Dense GEMM.
    #[allow(clippy::too_many_arguments)]
    fn gemm(
        &mut self,
        alpha: S,
        a: MatRefOf<'_, S>,
        ta: Trans,
        b: MatRefOf<'_, S>,
        tb: Trans,
        beta: S,
        c: MatMutOf<'_, S>,
    );
    /// Sparse-dense GEMM `C = alpha A B + beta C`.
    fn spmm(&mut self, alpha: S, a: &CscOf<S>, b: MatRefOf<'_, S>, beta: S, c: MatMutOf<'_, S>);
    /// SYRK `C(lower) = alpha Aᵀ A + beta C`.
    fn syrk(&mut self, alpha: S, a: MatRefOf<'_, S>, beta: S, c: MatMutOf<'_, S>);
    /// Gather/scatter of `count` elements (pruning compaction, permutation,
    /// dense expansion). Pure cost accounting on the GPU; free on the CPU.
    fn gather(&mut self, count: usize);
}

/// Host backend: direct `sc-dense`/`sc-sparse` calls, no cost accounting.
#[derive(Default, Clone, Copy, Debug)]
pub struct CpuExec;

impl<S: Scalar> Exec<S> for CpuExec {
    fn trsm_dense(&mut self, l: MatRefOf<'_, S>, b: MatMutOf<'_, S>) {
        sc_dense::trsm_lower_left(l, b);
    }

    fn trsm_sparse(&mut self, l: &CscOf<S>, b: MatMutOf<'_, S>) {
        sc_sparse::csc_lower_solve_mat(l, b);
    }

    fn gemm(
        &mut self,
        alpha: S,
        a: MatRefOf<'_, S>,
        ta: Trans,
        b: MatRefOf<'_, S>,
        tb: Trans,
        beta: S,
        c: MatMutOf<'_, S>,
    ) {
        sc_dense::gemm(alpha, a, ta, b, tb, beta, c);
    }

    fn spmm(
        &mut self,
        alpha: S,
        a: &CscOf<S>,
        b: MatRefOf<'_, S>,
        beta: S,
        mut c: MatMutOf<'_, S>,
    ) {
        a.spmm(alpha, b, beta, &mut c);
    }

    fn syrk(&mut self, alpha: S, a: MatRefOf<'_, S>, beta: S, c: MatMutOf<'_, S>) {
        sc_dense::syrk_t(alpha, a, beta, c);
    }

    fn gather(&mut self, _count: usize) {}
}

/// Simulated-GPU backend: every call computes on the host *and* advances the
/// bound stream's simulated timeline (see `sc-gpu`).
pub struct GpuExec<'a> {
    kernels: &'a GpuKernels,
}

impl<'a> GpuExec<'a> {
    /// Bind to a kernel set (one per stream).
    pub fn new(kernels: &'a GpuKernels) -> Self {
        GpuExec { kernels }
    }

    /// The underlying kernel set (for stream-time instrumentation).
    pub fn kernels(&self) -> &GpuKernels {
        self.kernels
    }
}

impl<S: Scalar> Exec<S> for GpuExec<'_> {
    fn is_gpu(&self) -> bool {
        true
    }

    fn trsm_dense(&mut self, l: MatRefOf<'_, S>, b: MatMutOf<'_, S>) {
        self.kernels.trsm_dense(l, b);
    }

    fn trsm_sparse(&mut self, l: &CscOf<S>, b: MatMutOf<'_, S>) {
        self.kernels.trsm_sparse(l, b);
    }

    fn gemm(
        &mut self,
        alpha: S,
        a: MatRefOf<'_, S>,
        ta: Trans,
        b: MatRefOf<'_, S>,
        tb: Trans,
        beta: S,
        c: MatMutOf<'_, S>,
    ) {
        self.kernels.gemm(alpha, a, ta, b, tb, beta, c);
    }

    fn spmm(&mut self, alpha: S, a: &CscOf<S>, b: MatRefOf<'_, S>, beta: S, c: MatMutOf<'_, S>) {
        self.kernels.spmm(alpha, a, b, beta, c);
    }

    fn syrk(&mut self, alpha: S, a: MatRefOf<'_, S>, beta: S, c: MatMutOf<'_, S>) {
        self.kernels.syrk(alpha, a, beta, c);
    }

    fn gather(&mut self, count: usize) {
        self.kernels.gather_of::<S>(count);
    }
}

/// Recording backend for the scheduled batch driver: computes the numerics
/// on the host (exactly like [`CpuExec`], so results are bitwise identical
/// to the CPU path) while appending the [`KernelCost`] every call *would*
/// have launched on the simulated GPU — kernel for kernel the same costs
/// [`GpuExec`] submits, priced at the working precision's element width.
/// The scheduler later replays the recorded sequence into the device
/// timeline in a deterministic order, decoupling host-side parallel
/// computation from simulated-time accounting.
///
/// Alongside each cost the recorder notes how the kernel touches the
/// subdomain's temporary-arena slot ([`SlotAccess`]): uploads write it,
/// downloads read it, compute kernels read and write it. The replay binds
/// these relative accesses to the concrete slot admitted for the subdomain,
/// producing the hazard-audit [`Trace`](sc_gpu::Trace).
#[derive(Default)]
pub struct RecordingExec {
    costs: Vec<KernelCost>,
    accesses: Vec<SlotAccess>,
}

impl RecordingExec {
    /// Empty recorder.
    pub fn new() -> Self {
        RecordingExec::default()
    }

    fn push(&mut self, cost: KernelCost, access: SlotAccess) {
        self.costs.push(cost);
        self.accesses.push(access);
    }

    /// Record the H2D upload of a CSC matrix (mirrors
    /// `GpuKernels::upload_csc`, via the shared
    /// [`KernelCost::csc_transfer_of`] cost model). Writes the subdomain's
    /// arena slot.
    pub fn record_upload_csc<S: Scalar>(&mut self, m: &CscOf<S>) {
        self.push(
            KernelCost::csc_transfer_of::<S>(m.nnz()),
            SlotAccess::write(),
        );
    }

    /// Record a D2H download of `bytes` (mirrors
    /// `GpuKernels::download_bytes`). Reads the subdomain's arena slot.
    pub fn record_download_bytes(&mut self, bytes: usize) {
        self.push(KernelCost::transfer(bytes as f64), SlotAccess::read()); // sc-analyze: allow(precision-discipline)
    }

    /// The recorded kernel sequence, in launch order.
    pub fn into_costs(self) -> Vec<KernelCost> {
        self.costs
    }

    /// The recorded kernel sequence with the per-kernel slot accesses, in
    /// launch order (the two vectors are index-aligned).
    pub fn into_recording(self) -> (Vec<KernelCost>, Vec<SlotAccess>) {
        debug_assert_eq!(
            self.costs.len(),
            self.accesses.len(),
            "every recorded cost carries exactly one slot access"
        );
        (self.costs, self.accesses)
    }
}

impl<S: Scalar> Exec<S> for RecordingExec {
    // models the GPU platform: ScConfig::Auto must resolve exactly as it
    // would on a live GpuExec so recorded costs match a direct GPU run
    fn is_gpu(&self) -> bool {
        true
    }

    fn trsm_dense(&mut self, l: MatRefOf<'_, S>, b: MatMutOf<'_, S>) {
        self.push(
            KernelCost::trsm_dense_of::<S>(l.nrows(), b.ncols()),
            SlotAccess::read_write(),
        );
        sc_dense::trsm_lower_left(l, b);
    }

    fn trsm_sparse(&mut self, l: &CscOf<S>, b: MatMutOf<'_, S>) {
        self.push(
            KernelCost::trsm_sparse_of::<S>(l.nnz(), b.ncols()),
            SlotAccess::read_write(),
        );
        sc_sparse::csc_lower_solve_mat(l, b);
    }

    fn gemm(
        &mut self,
        alpha: S,
        a: MatRefOf<'_, S>,
        ta: Trans,
        b: MatRefOf<'_, S>,
        tb: Trans,
        beta: S,
        c: MatMutOf<'_, S>,
    ) {
        let k = match ta {
            Trans::No => a.ncols(),
            Trans::Yes => a.nrows(),
        };
        self.push(
            KernelCost::gemm_of::<S>(c.nrows(), c.ncols(), k),
            SlotAccess::read_write(),
        );
        sc_dense::gemm(alpha, a, ta, b, tb, beta, c);
    }

    fn spmm(
        &mut self,
        alpha: S,
        a: &CscOf<S>,
        b: MatRefOf<'_, S>,
        beta: S,
        mut c: MatMutOf<'_, S>,
    ) {
        self.push(
            KernelCost::spmm_of::<S>(a.nnz(), b.ncols()),
            SlotAccess::read_write(),
        );
        a.spmm(alpha, b, beta, &mut c);
    }

    fn syrk(&mut self, alpha: S, a: MatRefOf<'_, S>, beta: S, c: MatMutOf<'_, S>) {
        self.push(
            KernelCost::syrk_of::<S>(a.ncols(), a.nrows()),
            SlotAccess::read_write(),
        );
        sc_dense::syrk_t(alpha, a, beta, c);
    }

    fn gather(&mut self, count: usize) {
        self.push(KernelCost::gather_of::<S>(count), SlotAccess::read_write());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_dense::{Mat, MatOf};
    use sc_gpu::{Device, DeviceSpec};

    #[test]
    fn cpu_and_gpu_backends_produce_identical_numbers() {
        let l = Mat::from_fn(5, 5, |i, j| {
            if i == j {
                3.0
            } else if i > j {
                -0.2
            } else {
                0.0
            }
        });
        let b = Mat::from_fn(5, 2, |i, j| (i * 2 + j) as f64);
        let mut x_cpu = b.clone();
        Exec::<f64>::trsm_dense(&mut CpuExec, l.as_ref(), x_cpu.as_mut());

        let dev = Device::new(DeviceSpec::a100(), 1);
        let k = GpuKernels::new(dev.stream(0));
        let mut gpu = GpuExec::new(&k);
        let mut x_gpu = b.clone();
        Exec::<f64>::trsm_dense(&mut gpu, l.as_ref(), x_gpu.as_mut());

        assert_eq!(x_cpu, x_gpu);
        assert!(dev.synchronize() > 0.0, "GPU timeline must advance");
    }

    #[test]
    fn recording_exec_mirrors_gpu_exec_costs_and_numbers() {
        use crate::assemble::{assemble_sc, ScConfig};
        use sc_sparse::Coo;

        // small factor + gluing block, assembled once on GpuExec and once on
        // RecordingExec: numerics must match bitwise, and the recorded cost
        // count must equal the device's launch count minus the explicit
        // upload/download transfers we record separately here.
        let n = 12;
        let mut lc = Coo::new(n, n);
        for j in 0..n {
            lc.push(j, j, 2.0 + j as f64 * 0.1);
            if j + 2 < n {
                lc.push(j + 2, j, -0.3);
            }
        }
        let l = lc.to_csc();
        let mut bc = Coo::new(n, 5);
        for j in 0..5 {
            bc.push((j * 3) % n, j, 1.0);
        }
        let bt = bc.to_csc();
        let cfg = ScConfig::optimized(true, false);

        let dev = Device::new(DeviceSpec::a100(), 1);
        let k = GpuKernels::new(dev.stream(0));
        k.upload_csc(&l);
        k.upload_csc(&bt);
        let mut gpu = GpuExec::new(&k);
        let f_gpu = assemble_sc(&mut gpu, &l, &bt, &cfg);
        k.download_bytes(0);

        let mut rec = RecordingExec::new();
        rec.record_upload_csc(&l);
        rec.record_upload_csc(&bt);
        let f_rec = assemble_sc(&mut rec, &l, &bt, &cfg);
        rec.record_download_bytes(0);

        assert_eq!(f_gpu, f_rec, "recorded path must match GPU path bitwise");
        assert!(
            Exec::<f64>::is_gpu(&rec),
            "recorder models the GPU platform"
        );
        let costs = rec.into_costs();
        assert_eq!(
            costs.len(),
            dev.launches(),
            "recorded kernel sequence must mirror the live submission count"
        );
    }

    #[test]
    fn f32_recording_prices_kernels_at_four_bytes() {
        // the same kernel sequence recorded at f32 must carry exactly the
        // f32-priced costs (half the value traffic of the f64 recording)
        let l = MatOf::<f32>::from_fn(4, 4, |i, j| {
            if i == j {
                2.0f32
            } else if i > j {
                -0.1
            } else {
                0.0
            }
        });
        let b32 = MatOf::<f32>::from_fn(4, 2, |i, j| (i + j) as f32);
        let mut rec = RecordingExec::new();
        let mut x = b32.clone();
        Exec::<f32>::trsm_dense(&mut rec, l.as_ref(), x.as_mut());
        let costs = rec.into_costs();
        assert_eq!(costs.len(), 1);
        assert_eq!(costs[0], KernelCost::trsm_dense_of::<f32>(4, 2));
        assert_eq!(
            costs[0].bytes * 2.0,
            KernelCost::trsm_dense_of::<f64>(4, 2).bytes
        );
    }
}
