//! Execution backend abstraction: the same splitting algorithms run on the
//! CPU and on the simulated GPU.

use sc_dense::{MatMut, MatRef, Trans};
use sc_gpu::GpuKernels;
use sc_sparse::Csc;

/// Backend kernel set used by the TRSM/SYRK splitting algorithms.
pub trait Exec {
    /// Dense lower-triangular solve `L X = B`, in place.
    fn trsm_dense(&mut self, l: MatRef<'_>, b: MatMut<'_>);
    /// Sparse lower-triangular solve `L X = B`, in place.
    fn trsm_sparse(&mut self, l: &Csc, b: MatMut<'_>);
    /// Dense GEMM.
    #[allow(clippy::too_many_arguments)]
    fn gemm(
        &mut self,
        alpha: f64,
        a: MatRef<'_>,
        ta: Trans,
        b: MatRef<'_>,
        tb: Trans,
        beta: f64,
        c: MatMut<'_>,
    );
    /// Sparse-dense GEMM `C = alpha A B + beta C`.
    fn spmm(&mut self, alpha: f64, a: &Csc, b: MatRef<'_>, beta: f64, c: MatMut<'_>);
    /// SYRK `C(lower) = alpha Aᵀ A + beta C`.
    fn syrk(&mut self, alpha: f64, a: MatRef<'_>, beta: f64, c: MatMut<'_>);
    /// Gather/scatter of `count` elements (pruning compaction, permutation,
    /// dense expansion). Pure cost accounting on the GPU; free on the CPU.
    fn gather(&mut self, count: usize);
}

/// Host backend: direct `sc-dense`/`sc-sparse` calls, no cost accounting.
#[derive(Default, Clone, Copy, Debug)]
pub struct CpuExec;

impl Exec for CpuExec {
    fn trsm_dense(&mut self, l: MatRef<'_>, b: MatMut<'_>) {
        sc_dense::trsm_lower_left(l, b);
    }

    fn trsm_sparse(&mut self, l: &Csc, b: MatMut<'_>) {
        sc_sparse::csc_lower_solve_mat(l, b);
    }

    fn gemm(
        &mut self,
        alpha: f64,
        a: MatRef<'_>,
        ta: Trans,
        b: MatRef<'_>,
        tb: Trans,
        beta: f64,
        c: MatMut<'_>,
    ) {
        sc_dense::gemm(alpha, a, ta, b, tb, beta, c);
    }

    fn spmm(&mut self, alpha: f64, a: &Csc, b: MatRef<'_>, beta: f64, mut c: MatMut<'_>) {
        a.spmm(alpha, b, beta, &mut c);
    }

    fn syrk(&mut self, alpha: f64, a: MatRef<'_>, beta: f64, c: MatMut<'_>) {
        sc_dense::syrk_t(alpha, a, beta, c);
    }

    fn gather(&mut self, _count: usize) {}
}

/// Simulated-GPU backend: every call computes on the host *and* advances the
/// bound stream's simulated timeline (see `sc-gpu`).
pub struct GpuExec<'a> {
    kernels: &'a GpuKernels,
}

impl<'a> GpuExec<'a> {
    /// Bind to a kernel set (one per stream).
    pub fn new(kernels: &'a GpuKernels) -> Self {
        GpuExec { kernels }
    }

    /// The underlying kernel set (for stream-time instrumentation).
    pub fn kernels(&self) -> &GpuKernels {
        self.kernels
    }
}

impl Exec for GpuExec<'_> {
    fn trsm_dense(&mut self, l: MatRef<'_>, b: MatMut<'_>) {
        self.kernels.trsm_dense(l, b);
    }

    fn trsm_sparse(&mut self, l: &Csc, b: MatMut<'_>) {
        self.kernels.trsm_sparse(l, b);
    }

    fn gemm(
        &mut self,
        alpha: f64,
        a: MatRef<'_>,
        ta: Trans,
        b: MatRef<'_>,
        tb: Trans,
        beta: f64,
        c: MatMut<'_>,
    ) {
        self.kernels.gemm(alpha, a, ta, b, tb, beta, c);
    }

    fn spmm(&mut self, alpha: f64, a: &Csc, b: MatRef<'_>, beta: f64, c: MatMut<'_>) {
        self.kernels.spmm(alpha, a, b, beta, c);
    }

    fn syrk(&mut self, alpha: f64, a: MatRef<'_>, beta: f64, c: MatMut<'_>) {
        self.kernels.syrk(alpha, a, beta, c);
    }

    fn gather(&mut self, count: usize) {
        self.kernels.gather(count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_dense::Mat;
    use sc_gpu::{Device, DeviceSpec};

    #[test]
    fn cpu_and_gpu_backends_produce_identical_numbers() {
        let l = Mat::from_fn(5, 5, |i, j| {
            if i == j {
                3.0
            } else if i > j {
                -0.2
            } else {
                0.0
            }
        });
        let b = Mat::from_fn(5, 2, |i, j| (i * 2 + j) as f64);
        let mut x_cpu = b.clone();
        CpuExec.trsm_dense(l.as_ref(), x_cpu.as_mut());

        let dev = Device::new(DeviceSpec::a100(), 1);
        let k = GpuKernels::new(dev.stream(0));
        let mut gpu = GpuExec::new(&k);
        let mut x_gpu = b.clone();
        gpu.trsm_dense(l.as_ref(), x_gpu.as_mut());

        assert_eq!(x_cpu, x_gpu);
        assert!(dev.synchronize() > 0.0, "GPU timeline must advance");
    }
}
