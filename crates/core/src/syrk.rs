//! Sparsity-utilizing SYRK on the stepped TRSM solution (paper §3.3).
//!
//! Input: the dense `Y = L⁻¹B̃ᵀ`, still in stepped shape (TRSM preserves the
//! zeros above the pivots). Output: the lower triangle of `F̃ = YᵀY`.
//!
//! - **input splitting** (Figure 4a): partition `Y` into block rows; each
//!   block row is non-zero only in its leading `w` columns, so one inner SYRK
//!   updates the leading `w × w` principal submatrix of the output.
//! - **output splitting** (Figure 4b): compute the output by block rows; the
//!   diagonal block comes from an inner SYRK over the corresponding block
//!   column of `Y`, the off-diagonal strip from a GEMM — both with the `k`
//!   range starting at the block column's first pivot.

use crate::exec::Exec;
use crate::stepped::SteppedRhsOf;
use crate::tune::{col_cuts, row_cuts, BlockCutsCache, BlockParam};
use sc_dense::{MatOf, Scalar, Trans};

/// SYRK algorithm selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyrkVariant {
    /// Original algorithm of \[9\]: one SYRK over the full `Y`.
    Plain,
    /// Input-matrix splitting into block rows.
    InputSplit(BlockParam),
    /// Output-matrix splitting into block rows.
    OutputSplit(BlockParam),
}

/// Compute `f(lower) = Yᵀ Y` with the selected variant. `f` must be `m × m`
/// and is fully overwritten (lower triangle written, upper left untouched
/// except by the caller's later symmetrization).
pub fn run_syrk<S: Scalar, E: Exec<S>>(
    exec: &mut E,
    y: &MatOf<S>,
    stepped: &SteppedRhsOf<S>,
    variant: SyrkVariant,
    f: &mut MatOf<S>,
) {
    run_syrk_with_cache(exec, y, stepped, variant, f, None)
}

/// [`run_syrk`] with an optional shared block-cut memo table (see
/// [`BlockCutsCache`]).
pub fn run_syrk_with_cache<S: Scalar, E: Exec<S>>(
    exec: &mut E,
    y: &MatOf<S>,
    stepped: &SteppedRhsOf<S>,
    variant: SyrkVariant,
    f: &mut MatOf<S>,
    cache: Option<&BlockCutsCache>,
) {
    let n = y.nrows();
    let m = y.ncols();
    assert_eq!(f.nrows(), m);
    assert_eq!(f.ncols(), m);
    assert_eq!(stepped.ncols(), m);
    match variant {
        SyrkVariant::Plain => {
            exec.syrk(S::ONE, y.as_ref(), S::ZERO, f.as_mut());
        }
        SyrkVariant::InputSplit(block) => {
            f.fill(S::ZERO);
            let cuts = row_cuts(cache, block, n, &stepped.pivots);
            for w in cuts.windows(2) {
                let (r0, r1) = (w[0], w[1]);
                // columns active in this block row ("the width of each block
                // row is dictated by the right-most non-zero in the block
                // row")
                let width = stepped.active_width(r1);
                if width == 0 {
                    continue;
                }
                let a = y.as_ref().sub(r0, 0, r1 - r0, width);
                let fsub = f.as_mut().into_sub(0, 0, width, width);
                exec.syrk(S::ONE, a, S::ONE, fsub);
            }
        }
        SyrkVariant::OutputSplit(block) => {
            let cuts = col_cuts(cache, block, m, &stepped.pivots, n);
            for w in cuts.windows(2) {
                let (c0, c1) = (w[0], w[1]);
                // k range starts at the block column's first pivot ("the k
                // size ... can be reduced to match the highest column pivot
                // in the input block column above the output diagonal block")
                let k0 = stepped.pivots[c0].min(n);
                let krows = n - k0;
                // diagonal block: SYRK over Y[k0.., c0..c1]
                let a = y.as_ref().sub(k0, c0, krows, c1 - c0);
                let fdiag = f.as_mut().into_sub(c0, c0, c1 - c0, c1 - c0);
                exec.syrk(S::ONE, a, S::ZERO, fdiag);
                // off-diagonal strip: F[c0..c1, 0..c0] = Aᵀ · Y[k0.., 0..c0]
                if c0 > 0 {
                    let b = y.as_ref().sub(k0, 0, krows, c0);
                    let foff = f.as_mut().into_sub(c0, 0, c1 - c0, c0);
                    exec.gemm(S::ONE, a, Trans::Yes, b, Trans::No, S::ZERO, foff);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::CpuExec;
    use crate::stepped::SteppedRhs;
    use sc_dense::Mat;
    use sc_sparse::{Coo, Perm};

    fn stepped_y(n: usize, m: usize, seed: u64) -> (SteppedRhs, Mat) {
        let mut state = seed | 1;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut c = Coo::new(n, m);
        for j in 0..m {
            let pivot = ((rnd() * n as f64) as usize).min(n - 1);
            c.push(pivot, j, rnd() + 0.1);
            for i in (pivot + 1)..n {
                if rnd() < 0.4 {
                    c.push(i, j, rnd() - 0.5);
                }
            }
        }
        let mut order: Vec<usize> = (0..m).collect();
        for k in (1..m).rev() {
            let r = ((rnd() * (k + 1) as f64) as usize).min(k);
            order.swap(k, r);
        }
        let bt = c.to_csc().permute_cols(&Perm::from_old_of_new(order));
        let stepped = SteppedRhs::new(&bt);
        // Y: dense stepped matrix — in the real pipeline this is the TRSM
        // output, which is dense BELOW the pivots; emulate by filling below
        // each pivot with pseudo-random values.
        let mut y = Mat::zeros(n, stepped.ncols());
        for j in 0..stepped.ncols() {
            for i in stepped.pivots[j]..n {
                y[(i, j)] = rnd() - 0.5;
            }
        }
        (stepped, y)
    }

    fn reference(y: &Mat) -> Mat {
        let m = y.ncols();
        let mut f = Mat::zeros(m, m);
        sc_dense::syrk_t(1.0, y.as_ref(), 0.0, f.as_mut());
        f
    }

    fn lower_diff(a: &Mat, b: &Mat) -> f64 {
        let m = a.nrows();
        let mut d = 0.0f64;
        for j in 0..m {
            for i in j..m {
                d = d.max((a[(i, j)] - b[(i, j)]).abs());
            }
        }
        d
    }

    fn check(variant: SyrkVariant) {
        let (stepped, y) = stepped_y(31, 17, 7);
        let expect = reference(&y);
        let mut f = Mat::from_fn(17, 17, |_, _| f64::NAN); // must be overwritten
        run_syrk(&mut CpuExec, &y, &stepped, variant, &mut f);
        let d = lower_diff(&f, &expect);
        assert!(d < 1e-12, "{variant:?}: diff {d}");
    }

    #[test]
    fn plain_matches_reference() {
        check(SyrkVariant::Plain);
    }

    #[test]
    fn input_split_matches_reference() {
        for block in [
            BlockParam::Size(3),
            BlockParam::Size(10),
            BlockParam::Count(4),
        ] {
            check(SyrkVariant::InputSplit(block));
        }
    }

    #[test]
    fn output_split_matches_reference() {
        for block in [
            BlockParam::Size(2),
            BlockParam::Size(8),
            BlockParam::Count(3),
        ] {
            check(SyrkVariant::OutputSplit(block));
        }
    }

    #[test]
    fn single_block_equals_plain() {
        let (stepped, y) = stepped_y(20, 9, 13);
        let mut f1 = Mat::zeros(9, 9);
        run_syrk(&mut CpuExec, &y, &stepped, SyrkVariant::Plain, &mut f1);
        let mut f2 = Mat::zeros(9, 9);
        run_syrk(
            &mut CpuExec,
            &y,
            &stepped,
            SyrkVariant::OutputSplit(BlockParam::Count(1)),
            &mut f2,
        );
        assert!(lower_diff(&f1, &f2) < 1e-13);
    }

    #[test]
    fn handles_empty_columns() {
        // a stepped matrix with trailing empty columns (pivot == n)
        let n = 12;
        let mut c = Coo::new(n, 3);
        c.push(2, 0, 1.0);
        c.push(5, 1, 1.0);
        // column 2 empty
        let stepped = SteppedRhs::new(&c.to_csc());
        let mut y = Mat::zeros(n, 3);
        for j in 0..2 {
            for i in stepped.pivots[j]..n {
                y[(i, j)] = 1.0;
            }
        }
        let expect = reference(&y);
        for variant in [
            SyrkVariant::InputSplit(BlockParam::Size(4)),
            SyrkVariant::OutputSplit(BlockParam::Size(2)),
        ] {
            let mut f = Mat::zeros(3, 3);
            run_syrk(&mut CpuExec, &y, &stepped, variant, &mut f);
            assert!(lower_diff(&f, &expect) < 1e-13, "{variant:?}");
        }
    }
}
