//! Parallel batched multi-subdomain assembly.
//!
//! The paper's production setting (like its CUDA predecessor, arXiv:2502.08382)
//! assembles the dense local dual operators `F̃ᵢ` of **hundreds of subdomains
//! per cluster**, one OpenMP thread per subdomain. This module is that loop:
//! [`assemble_sc_batch`] fans the per-subdomain [`assemble_sc`](crate::assemble_sc) pipelines out
//! over rayon, sharing one [`BlockCutsCache`] so that equal-shape subdomains
//! (the overwhelmingly common case on regular decompositions) resolve their
//! [`BlockParam`](crate::tune::BlockParam) partitions exactly once, and
//! recording per-subdomain timings for load-balance diagnostics.
//!
//! The public entry point is
//! [`AssemblySession::assemble`](crate::session::AssemblySession::assemble), which
//! dispatches on a [`Backend`](crate::Backend) value (CPU / one GPU /
//! device pool / hybrid). The free functions still exported here —
//! [`assemble_sc_batch`], [`assemble_sc_batch_gpu`],
//! [`assemble_sc_batch_scheduled`], [`assemble_sc_batch_cluster`] — are
//! thin `#[deprecated]` wrappers kept for one release so downstream code
//! migrates with a warning instead of a break; their `_map` twins are gone
//! (lazy per-task factor derivation now goes through
//! [`LazyBatch`](crate::source::LazyBatch)).
//!
//! Execution targets:
//!
//! - **CPU** — one rayon task per subdomain;
//! - **GPU, round-robin** — the paper's 16-stream submission loop (one host
//!   worker per stream, in index order; reachable only through the
//!   deprecated [`assemble_sc_batch_gpu`] — [`Target::Gpu`](crate::session::Target::Gpu)
//!   schedules instead);
//! - **GPU, scheduled** — the **memory-aware, cost-model-driven scheduler**
//!   of [`crate::schedule`] (paper §4.4): LPT ordering onto the
//!   least-loaded stream, admission against the device's temporary arena
//!   ("wait"), optional host-readiness overlap ("mix"), and a deterministic
//!   record-then-replay execution so the simulated timeline is reproducible
//!   run to run;
//! - **cluster** — a two-level plan sharding the batch across a device
//!   pool, each device replaying its share through the scheduled machinery;
//! - **hybrid spill** — the cluster plan with
//!   [`plan_cluster_spill_by`](crate::schedule::plan_cluster_spill_by):
//!   subdomains that fit no device arena keep their host-computed `F̃ᵢ`
//!   instead of erroring.
//!
//! Results are **identical** to running [`assemble_sc`](crate::assemble_sc) per subdomain
//! sequentially: every subdomain's pipeline is independent and the cache only
//! memoizes block boundaries, not numerics (dedicated tests assert bitwise
//! equality for every driver).
//!
//! ## Clocks
//!
//! [`SubdomainTiming::seconds`] is **backend time**: simulated device
//! seconds on the GPU drivers (the subdomain's span on its stream), host
//! wall seconds on the CPU driver. [`SubdomainTiming::host_seconds`] is
//! always host wall time, so [`BatchReport::speedup`] compares commensurable
//! clocks; the GPU makespan lives in [`BatchReport::device_seconds`].

use crate::assemble::{assemble_sc_with_cache, ScConfig};
use crate::exec::{Exec, GpuExec, RecordingExec};
use crate::schedule::{self, ArenaSim, ScheduleOptions, ScheduledSpan, StreamPolicy};
use crate::source::BatchSource;
use crate::tune::BlockCutsCache;
use rayon::prelude::*;
use sc_dense::{Mat, MatOf, Scalar};
use sc_gpu::{Device, DevicePool, GpuKernels, SimSpan, Trace, TraceEvent};
use sc_sparse::CscOf;
use std::time::Instant;

/// Per-subdomain input to the batched assembler: the subdomain's Cholesky
/// factor and its gluing block with rows already in factor order (the same
/// pair [`assemble_sc`](crate::assemble_sc) takes).
#[derive(Clone, Copy)]
pub struct BatchItemOf<'a, S: Scalar = f64> {
    /// Cholesky factor of the regularized subdomain matrix (CSC, diag-first).
    pub l: &'a CscOf<S>,
    /// `B̃ᵢᵀ` with rows permuted into the factor's order.
    pub bt: &'a CscOf<S>,
}

/// `f64` batch item (the historical type).
pub type BatchItem<'a> = BatchItemOf<'a, f64>;

/// Timing and shape record for one subdomain of a batch.
#[derive(Clone, Copy, Debug)]
pub struct SubdomainTiming {
    /// Position of the subdomain in the input batch.
    pub index: usize,
    /// Factor dimension (subdomain dof count).
    pub n_dofs: usize,
    /// Local multiplier count (order of `F̃ᵢ`).
    pub n_lambda: usize,
    /// Backend seconds of this subdomain's assembly: **simulated device
    /// time** (span end − span start on its stream) on the GPU drivers,
    /// host wall time on the CPU driver.
    pub seconds: f64,
    /// Host wall seconds spent in this subdomain's task (always a host
    /// clock — compare with [`BatchReport::total_seconds`], never with
    /// simulated time).
    pub host_seconds: f64,
    /// Stream the subdomain ran on (`None` on the CPU driver).
    pub stream: Option<usize>,
    /// Simulated execution span on that stream (`None` on the CPU driver).
    pub span: Option<SimSpan>,
    /// Pool device the subdomain ran on (`None` on the CPU driver; `Some(0)`
    /// on the single-device GPU drivers).
    pub device: Option<usize>,
    /// Cluster node the subdomain ran on (`None` on every single-node
    /// driver; `Some` only under the multi-node backend).
    pub node: Option<usize>,
}

/// Aggregate diagnostics of one batched assembly.
#[derive(Clone, Debug, Default)]
pub struct BatchReport {
    /// Per-subdomain timings, in batch order.
    pub timings: Vec<SubdomainTiming>,
    /// Host wall time of the whole batch (not the sum of per-subdomain times
    /// — the ratio of the two is the achieved parallel speedup).
    pub total_seconds: f64,
    /// Simulated device makespan of the batch (`device.synchronize()` delta
    /// across the call); 0 on the CPU driver.
    pub device_seconds: f64,
    /// Executed schedule (one entry per subdomain, in execution order) on
    /// the scheduled GPU driver; empty otherwise.
    pub schedule: Vec<ScheduledSpan>,
    /// Peak simultaneous temporary-arena reservation of the executed
    /// schedule, bytes (0 when not scheduled).
    pub temp_high_water: usize,
    /// Block-cut resolutions served from the shared cache.
    pub cache_hits: usize,
    /// Block-cut resolutions computed fresh.
    pub cache_misses: usize,
    /// Hazard-audit trace of the executed schedule (alloc/free events and
    /// per-kernel stream/span/slot accesses — see [`sc_gpu::trace`]); `None`
    /// on drivers without a recorded replay. Slot ids are replay-local
    /// subdomain positions. Validate with `sc_analyze::trace::validate`.
    pub trace: Option<Trace>,
}

impl BatchReport {
    /// Sum of per-subdomain **host** task times (the sequential-equivalent
    /// host cost).
    pub fn cpu_seconds(&self) -> f64 {
        self.timings.iter().map(|t| t.host_seconds).sum()
    }

    /// Sum of per-subdomain backend times (simulated device seconds on the
    /// GPU drivers).
    pub fn backend_seconds(&self) -> f64 {
        self.timings.iter().map(|t| t.seconds).sum()
    }

    /// Achieved host-side parallel speedup `cpu_seconds / total_seconds`
    /// (≥ 1 when the batch parallelizes, ~1 on a single worker). Both
    /// quantities are host wall clocks — simulated device time never enters
    /// this ratio.
    pub fn speedup(&self) -> f64 {
        if self.total_seconds > 0.0 {
            self.cpu_seconds() / self.total_seconds
        } else {
            1.0
        }
    }
}

/// Result of a batched assembly: one dense `F̃ᵢ` per input subdomain (batch
/// order preserved) plus timing/cache diagnostics, in working precision `S`.
pub struct BatchResultOf<S: Scalar = f64> {
    /// Assembled local dual operators, indexed like the input batch.
    pub f: Vec<MatOf<S>>,
    /// Timing and cache diagnostics.
    pub report: BatchReport,
}

/// `f64` batch result (the historical type).
pub type BatchResult = BatchResultOf<f64>;

/// Assemble every subdomain's `F̃ᵢ` in parallel on the CPU.
///
/// One rayon task per subdomain — the paper's one-thread-per-subdomain
/// cluster loop — all sharing a single [`BlockCutsCache`].
#[deprecated(
    since = "0.2.0",
    note = "use AssemblySession::new(Backend::cpu(), cfg).assemble(items)"
)]
pub fn assemble_sc_batch(items: &[BatchItem<'_>], cfg: &ScConfig) -> BatchResult {
    batch_cpu(items, cfg)
}

/// CPU batch driver over any [`BatchSource`].
pub(crate) fn batch_cpu<S: Scalar, Src: BatchSource<S>>(
    src: Src,
    cfg: &ScConfig,
) -> BatchResultOf<S> {
    run_batch(src.len(), |i, cache| {
        let l = src.factor(i);
        let bt = src.gluing(i);
        let mut exec = crate::exec::CpuExec;
        let f = assemble_sc_with_cache(&mut exec, &l, bt, cfg, Some(cache));
        (f, l.ncols(), bt.ncols())
    })
}

/// Assemble every subdomain's `F̃ᵢ` on the simulated GPU with **round-robin**
/// stream assignment: one host worker per stream (the paper's 16-stream
/// submission loop), stream `s` processing subdomains `s, s + n_streams, …`
/// in order. Each subdomain's factor + gluing upload (H2D) is charged to its
/// stream before the assembly kernels, so the simulated timeline includes
/// transfer cost. Call `device.synchronize()` afterwards for the simulated
/// device time, or read [`BatchReport::device_seconds`].
///
/// The unified surface ([`Target::Gpu`](crate::session::Target::Gpu)) always
/// schedules; this live round-robin loop survives only behind this wrapper
/// as the pre-scheduler comparison baseline.
#[deprecated(
    since = "0.2.0",
    note = "use AssemblySession::new(Backend::gpu(device), cfg).assemble(items) \
            (with StreamPolicy::RoundRobin for the blind-assignment baseline)"
)]
pub fn assemble_sc_batch_gpu(
    items: &[BatchItem<'_>],
    cfg: &ScConfig,
    device: &std::sync::Arc<Device>,
) -> BatchResult {
    batch_gpu_rr(items, cfg, device)
}

/// Live round-robin GPU driver over any [`BatchSource`]: subdomains are
/// round-robined over the device's streams (one host worker per stream,
/// in-order within a stream), and the sequential `explicit_gpu` transfer
/// pattern is reproduced per subdomain (H2D factor + gluing upload before
/// the kernels, placeholder D2H sync after — the result stays resident on
/// the device).
pub(crate) fn batch_gpu_rr<S: Scalar, Src: BatchSource<S>>(
    src: Src,
    cfg: &ScConfig,
    device: &std::sync::Arc<Device>,
) -> BatchResultOf<S> {
    if src.is_empty() {
        return empty_batch_result();
    }
    assert!(
        device.n_streams() > 0,
        "cannot run a GPU batch of {} subdomains on a device with 0 streams",
        src.len()
    );
    let n_streams = device.n_streams();
    let cache = BlockCutsCache::new();
    let t0 = Instant::now();
    let sync0 = device.synchronize();
    // one worker per stream, so per-subdomain spans on a stream never
    // interleave (their sum is bounded by the stream's clock)
    let per_stream: Vec<Vec<(MatOf<S>, SubdomainTiming)>> = (0..n_streams)
        .into_par_iter()
        .map(|s| {
            let mut out = Vec::new();
            let mut i = s;
            while i < src.len() {
                let t_host = Instant::now();
                let l = src.factor(i);
                let bt = src.gluing(i);
                let kernels = GpuKernels::new(device.stream(s));
                kernels.upload_csc(&l);
                kernels.upload_csc(bt);
                let mut exec = GpuExec::new(&kernels);
                let f = assemble_sc_with_cache(&mut exec, &l, bt, cfg, Some(&cache));
                kernels.download_bytes(0); // result stays on device; placeholder sync
                let span = kernels
                    .captured_span()
                    .expect("GPU batch task submits at least the uploads");
                out.push((
                    f,
                    SubdomainTiming {
                        index: i,
                        n_dofs: l.ncols(),
                        n_lambda: bt.ncols(),
                        seconds: span.duration(),
                        host_seconds: t_host.elapsed().as_secs_f64(),
                        stream: Some(s),
                        span: Some(span),
                        device: Some(0),
                        node: None,
                    },
                ));
                i += n_streams;
            }
            out
        })
        .collect();
    let device_seconds = device.synchronize() - sync0;
    let total_seconds = t0.elapsed().as_secs_f64();

    // stitch the per-stream outputs back into batch order
    let count = src.len();
    let mut slots: Vec<Option<(MatOf<S>, SubdomainTiming)>> = (0..count).map(|_| None).collect();
    for chunk in per_stream {
        for entry in chunk {
            let idx = entry.1.index;
            slots[idx] = Some(entry);
        }
    }
    let mut f = Vec::with_capacity(count);
    let mut timings = Vec::with_capacity(count);
    for slot in slots {
        let (mat, timing) = slot.expect("every subdomain assembled exactly once");
        f.push(mat);
        timings.push(timing);
    }
    BatchResultOf {
        f,
        report: BatchReport {
            timings,
            total_seconds,
            device_seconds,
            schedule: Vec::new(),
            temp_high_water: 0,
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            trace: None,
        },
    }
}

/// Assemble a batch on the simulated GPU through the §4.4 scheduler
/// ([`crate::schedule`]): per-subdomain costs are estimated from the stepped
/// pattern, subdomains are ordered longest-first onto the least-loaded
/// stream (or round-robin, per [`ScheduleOptions::policy`]), and each
/// subdomain is admitted against the device's temporary-arena capacity
/// before its kernels replay onto its stream.
///
/// Execution is **record-then-replay**: numerics run host-parallel through
/// [`RecordingExec`] (bitwise identical to the CPU path), then the recorded
/// kernel sequences replay serially into the device timeline in
/// deterministic stream-clock order — the simulated timeline is reproducible
/// run to run, unlike live multi-threaded submission.
#[deprecated(
    since = "0.2.0",
    note = "use AssemblySession::new(Backend::gpu_with(device, schedule), cfg).assemble(items)"
)]
pub fn assemble_sc_batch_scheduled(
    items: &[BatchItem<'_>],
    cfg: &ScConfig,
    device: &std::sync::Arc<Device>,
    opts: &ScheduleOptions,
) -> BatchResult {
    batch_scheduled(items, cfg, device, opts)
}

/// §4.4 scheduled GPU driver over any [`BatchSource`].
pub(crate) fn batch_scheduled<S: Scalar, Src: BatchSource<S>>(
    src: Src,
    cfg: &ScConfig,
    device: &std::sync::Arc<Device>,
    opts: &ScheduleOptions,
) -> BatchResultOf<S> {
    if let Some(ready) = opts.ready_at.as_ref() {
        assert_eq!(
            ready.len(),
            src.len(),
            "ScheduleOptions::ready_at must carry one readiness time per \
             batch item ({} given, {} items)",
            ready.len(),
            src.len()
        );
    }
    if src.is_empty() {
        return empty_batch_result();
    }
    assert!(
        device.n_streams() > 0,
        "cannot schedule a batch of {} subdomains onto a device with 0 streams",
        src.len()
    );
    let cache = BlockCutsCache::new();
    let t0 = Instant::now();
    let sync0 = device.synchronize();
    let spec = device.spec().clone();

    // phase 1: host-parallel compute + cost recording
    let recorded = record_scheduled_batch(&src, cfg, &spec, &cache);

    // phase 2: plan + deterministic replay onto the device
    let refs: Vec<&Recorded<S>> = recorded.iter().collect();
    let estimates = refine_estimates(&refs, &spec);
    let plan = schedule::plan_streams_impl(&estimates, device.n_streams(), opts.policy);
    let outcome = replay_recorded(device, &refs, &estimates, &plan, opts.ready_at.as_deref());
    let device_seconds = device.synchronize() - sync0;

    // assemble the report in batch order
    let mut f = Vec::with_capacity(src.len());
    let mut timings = Vec::with_capacity(src.len());
    for (i, r) in recorded.into_iter().enumerate() {
        let (stream, span) = outcome.spans[i].expect("every subdomain was replayed");
        f.push(r.f);
        timings.push(SubdomainTiming {
            index: i,
            n_dofs: r.estimate.n_dofs,
            n_lambda: r.estimate.n_lambda,
            seconds: span.duration(),
            host_seconds: r.host_seconds,
            stream: Some(stream),
            span: Some(span),
            device: Some(0),
            node: None,
        });
    }
    BatchResultOf {
        f,
        report: BatchReport {
            timings,
            total_seconds: t0.elapsed().as_secs_f64(),
            device_seconds,
            schedule: outcome.executed,
            temp_high_water: outcome.temp_high_water,
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            trace: Some(outcome.trace),
        },
    }
}

/// One subdomain's record-phase output: the host-computed `F̃ᵢ` (bitwise
/// identical to the CPU path), the kernel-cost sequence to replay (with the
/// per-kernel arena-slot accesses for the hazard-audit trace), the analytic
/// cost estimate, and the host task time.
struct Recorded<S: Scalar = f64> {
    f: MatOf<S>,
    costs: Vec<sc_gpu::KernelCost>,
    accesses: Vec<sc_gpu::SlotAccess>,
    estimate: schedule::CostEstimate,
    host_seconds: f64,
}

/// Phase 1 of the scheduled/cluster drivers: host-parallel numerics through
/// [`RecordingExec`], plus per-subdomain analytic cost estimates under
/// `spec` (a reference spec — planners re-price per device as needed).
fn record_scheduled_batch<S: Scalar, Src: BatchSource<S>>(
    src: &Src,
    cfg: &ScConfig,
    spec: &sc_gpu::DeviceSpec,
    cache: &BlockCutsCache,
) -> Vec<Recorded<S>> {
    (0..src.len())
        .into_par_iter()
        .map(|i| {
            let t_host = Instant::now();
            let l = src.factor(i);
            let bt = src.gluing(i);
            let params = cfg.resolve(true, &l, bt);
            let estimate = schedule::estimate_cost_of::<S>(spec, &l, bt, &params, i);
            let mut rec = RecordingExec::new();
            rec.record_upload_csc(&l);
            rec.record_upload_csc(bt);
            let f = assemble_sc_with_cache(&mut rec, &l, bt, cfg, Some(cache));
            rec.record_download_bytes(0); // result stays on device
            let (costs, accesses) = rec.into_recording();
            Recorded {
                f,
                costs,
                accesses,
                estimate,
                host_seconds: t_host.elapsed().as_secs_f64(),
            }
        })
        .collect()
}

/// Refine the analytic ordering key with the recorded kernel sequence
/// priced by the device's own duration model: at small sizes per-launch
/// overhead dominates raw FLOPs, and the recorder has the exact launch
/// count in hand before anything replays. Estimate indices are renumbered
/// to the slice position (local order).
fn refine_estimates<S: Scalar>(
    recorded: &[&Recorded<S>],
    spec: &sc_gpu::DeviceSpec,
) -> Vec<schedule::CostEstimate> {
    recorded
        .iter()
        .enumerate()
        .map(|(local, r)| {
            let mut est = r.estimate.clone();
            est.index = local;
            est.seconds = r.costs.iter().map(|c| spec.kernel_seconds(c)).sum();
            est
        })
        .collect()
}

/// Outcome of one device's replay: the executed schedule and per-subdomain
/// spans (both in the **local** index space of the replayed slice), the
/// arena high water, and the hazard-audit trace of the replay.
struct ReplayOutcome {
    executed: Vec<ScheduledSpan>,
    spans: Vec<Option<(usize, SimSpan)>>,
    temp_high_water: usize,
    trace: Trace,
}

/// Phase 2 of the scheduled/cluster drivers: replay the recorded kernel
/// sequences onto `device` under `plan`, admitting each subdomain against
/// the device's temporary arena ("wait") and applying per-subdomain host
/// readiness ("mix"). All indices (plan assignments, `estimates`,
/// `ready_at`) are local to the `recorded` slice.
///
/// The replay merges the per-stream queues **kernel by kernel** in
/// stream-clock order: submitting a whole subdomain at once would hand the
/// concurrency slot heap a non-chronological sequence and serialize streams
/// that really overlap.
///
/// Every replay also emits a hazard-audit [`Trace`]: an `Alloc` event at
/// each subdomain's arena admission, one `Kernel` event per replayed launch
/// (stream, span, and the slot read/write sets bound from the recorder's
/// relative accesses), and a `Free` event at the release — plus the
/// device's own span log over the replay window as an independent witness
/// of per-stream serialization. The span log is captured non-destructively:
/// an outer `enable_span_log` caller still drains the full log afterwards.
fn replay_recorded<S: Scalar>(
    device: &std::sync::Arc<Device>,
    recorded: &[&Recorded<S>],
    estimates: &[schedule::CostEstimate],
    plan: &schedule::StreamPlan,
    ready_at: Option<&[f64]>,
) -> ReplayOutcome {
    let n_streams = plan.assignments.len();
    let mut arena = ArenaSim::new(device.temp_pool().capacity());
    let mut executed: Vec<ScheduledSpan> = Vec::with_capacity(recorded.len());
    let mut spans: Vec<Option<(usize, SimSpan)>> = vec![None; recorded.len()];
    let outer_span_log = device.span_log_enabled();
    device.enable_span_log();
    let span_log_mark = device.span_log_len();
    let mut events: Vec<TraceEvent> =
        Vec::with_capacity(recorded.iter().map(|r| r.costs.len() + 2).sum());
    struct InFlight {
        index: usize,
        kpos: usize,
        admitted_at: f64,
        span: Option<SimSpan>,
        bytes: usize,
        handle: usize,
    }
    let mut next = vec![0usize; n_streams];
    let mut current: Vec<Option<InFlight>> = (0..n_streams).map(|_| None).collect();
    loop {
        // candidates in clock order (ties by id): streams with a kernel in
        // flight, or with a queued subdomain to admit
        let mut order: Vec<usize> = (0..n_streams)
            .filter(|&s| current[s].is_some() || next[s] < plan.assignments[s].len())
            .collect();
        if order.is_empty() {
            break;
        }
        order.sort_by(|&a, &b| {
            device
                .stream_time(a)
                .partial_cmp(&device.stream_time(b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut acted = false;
        for s in order {
            if let Some(fl) = current[s].as_mut() {
                // replay the subdomain's next kernel
                let cost = &recorded[fl.index].costs[fl.kpos];
                let access = recorded[fl.index].accesses[fl.kpos];
                let k = device.submit(s, cost, 0.0);
                events.push(TraceEvent::Kernel {
                    label: cost.label,
                    stream: s,
                    span: k,
                    reads: if access.reads {
                        vec![fl.index]
                    } else {
                        Vec::new()
                    },
                    writes: if access.writes {
                        vec![fl.index]
                    } else {
                        Vec::new()
                    },
                });
                fl.kpos += 1;
                fl.span = Some(match fl.span {
                    None => k,
                    Some(acc) => SimSpan {
                        start: acc.start,
                        end: k.end,
                    },
                });
                if fl.kpos == recorded[fl.index].costs.len() {
                    // last kernel replayed: release the arena reservation
                    let fl = current[s].take().expect("in flight");
                    let span = fl.span.unwrap_or(SimSpan {
                        start: fl.admitted_at,
                        end: fl.admitted_at,
                    });
                    arena.close(fl.handle, span.end);
                    events.push(TraceEvent::Free {
                        slot: fl.index,
                        at: span.end,
                    });
                    executed.push(ScheduledSpan {
                        index: fl.index,
                        stream: s,
                        admitted_at: fl.admitted_at,
                        span,
                        temp_bytes: fl.bytes,
                    });
                    spans[fl.index] = Some((s, span));
                }
                acted = true;
                break;
            }
            let i = plan.assignments[s][next[s]];
            // "mix": the subdomain's host preparation finished at ready_at[i]
            if let Some(ready) = ready_at {
                device.advance_stream(s, ready[i]);
            }
            // "wait": stall the stream until the arena can hold the
            // temporaries; blocked by an in-flight holder → let another
            // stream replay first
            let bytes = estimates[i].temp_bytes;
            let Some(admitted_at) = arena.try_admit(bytes, device.stream_time(s)) else {
                continue;
            };
            device.advance_stream(s, admitted_at);
            let handle = arena.open(admitted_at, bytes);
            events.push(TraceEvent::Alloc {
                slot: i,
                bytes,
                at: admitted_at,
            });
            current[s] = Some(InFlight {
                index: i,
                kpos: 0,
                admitted_at,
                span: None,
                bytes,
                handle,
            });
            next[s] += 1;
            acted = true;
            break;
        }
        assert!(
            acted,
            "scheduler deadlock: every stream blocked on the arena with \
             nothing in flight (admission bookkeeping bug)"
        );
    }
    let span_log = device.span_log_since(span_log_mark);
    if !outer_span_log {
        device.disable_span_log();
    }
    ReplayOutcome {
        executed,
        spans,
        temp_high_water: arena.high_water(),
        trace: Trace {
            arena_capacity: device.temp_pool().capacity(),
            // the oversubscription audit compares arena reservations sized
            // with the replay's working precision (satellite of the mixed-
            // precision refactor: 4 for f32 replays, 8 for f64)
            elem_bytes: S::BYTES,
            n_streams,
            concurrency: device.spec().concurrency,
            events,
            span_log,
        },
    }
}

/// Options of the cluster (multi-device) batch driver — the `opts` payload
/// of [`Target::Cluster`](crate::session::Target::Cluster) and
/// [`Target::Hybrid`](crate::session::Target::Hybrid).
///
/// Construct with [`Default`] and the `with_*` setters (the struct is
/// `#[non_exhaustive]`, so it may grow fields without breaking callers):
///
/// ```
/// use sc_core::{ClusterOptions, StreamPolicy};
/// let opts = ClusterOptions::default().with_policy(StreamPolicy::LptLeastLoaded);
/// assert!(opts.ready_at.is_none());
/// ```
#[derive(Clone, Debug, Default)]
#[non_exhaustive]
pub struct ClusterOptions {
    /// Per-device stream-assignment policy (the second planning level).
    pub policy: StreamPolicy,
    /// Per-subdomain host-readiness times, indexed like the input batch
    /// (the "mix" configuration; sliced per device by the partition).
    pub ready_at: Option<Vec<f64>>,
}

impl ClusterOptions {
    /// Set the per-device stream-assignment policy.
    pub fn with_policy(mut self, policy: StreamPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Set per-subdomain host-readiness times (the "mix" configuration).
    pub fn with_ready_at(mut self, ready_at: Vec<f64>) -> Self {
        self.ready_at = Some(ready_at);
        self
    }
}

/// Roll-up diagnostics of one cluster-sharded batched assembly.
#[derive(Clone, Debug, Default)]
pub struct ClusterReport {
    /// Per-device [`BatchReport`]s; subdomain indices inside (timings and
    /// schedule entries) are remapped to **batch order**, streams stay
    /// device-local.
    pub per_device: Vec<BatchReport>,
    /// Subdomain indices assigned to each device, in execution order.
    pub partition: Vec<Vec<usize>>,
    /// Device of each subdomain, in batch order.
    pub device_of: Vec<usize>,
    /// Cluster makespan: the largest per-device simulated makespan (devices
    /// run concurrently, so the slowest device bounds the node).
    pub makespan: f64,
    /// Per-device utilization: busy kernel-seconds over `makespan ×
    /// n_streams` of that device (0 for idle devices).
    pub utilization: Vec<f64>,
    /// Host wall time of the whole cluster assembly.
    pub total_seconds: f64,
}

impl ClusterReport {
    /// Number of devices in the pool the batch ran on.
    pub fn n_devices(&self) -> usize {
        self.per_device.len()
    }

    /// Largest per-device temporary-arena high water, bytes.
    pub fn temp_high_water(&self) -> usize {
        self.per_device
            .iter()
            .map(|r| r.temp_high_water)
            .max()
            .unwrap_or(0)
    }

    /// Flatten into a single [`BatchReport`]: timings in batch order,
    /// `device_seconds` = cluster makespan, schedules concatenated in device
    /// order (stream ids stay device-local — pair them with
    /// [`ClusterReport::device_of`]), cache counters summed.
    pub fn combined(&self) -> BatchReport {
        let mut timings: Vec<SubdomainTiming> = self
            .per_device
            .iter()
            .flat_map(|r| r.timings.iter().copied())
            .collect();
        timings.sort_by_key(|t| t.index);
        let schedule: Vec<ScheduledSpan> = self
            .per_device
            .iter()
            .flat_map(|r| r.schedule.iter().copied())
            .collect();
        BatchReport {
            timings,
            total_seconds: self.total_seconds,
            device_seconds: self.makespan,
            schedule,
            temp_high_water: self.temp_high_water(),
            cache_hits: self.per_device.iter().map(|r| r.cache_hits).sum(),
            cache_misses: self.per_device.iter().map(|r| r.cache_misses).sum(),
            // traces are per-device (slot ids and streams are device-local)
            // and do not merge; read them off `per_device` instead
            trace: None,
        }
    }
}

/// Result of a cluster-sharded batched assembly: one dense `F̃ᵢ` per input
/// subdomain (batch order preserved) plus the cluster roll-up.
pub struct ClusterResult {
    /// Assembled local dual operators, indexed like the input batch.
    pub f: Vec<Mat>,
    /// Per-device and roll-up diagnostics.
    pub report: ClusterReport,
}

/// Assemble a batch across a **pool of devices** (the paper's 8-GPU node):
/// subdomains are **recorded once** (host-parallel numerics + kernel-cost
/// sequences, shared block-cut cache), then a two-level plan partitions
/// them across devices — cost-aware LPT under each device's own spec, with
/// per-device arena-capacity admissibility
/// ([`crate::schedule::plan_cluster`]) — and each device replays its share
/// through the single-device §4.4 machinery of
/// [`assemble_sc_batch_scheduled`]: LPT stream assignment (estimates
/// refined under that device's duration model), arena admission,
/// kernel-granular deterministic replay. Numerics stay bitwise identical to
/// the sequential CPU path; the partition only moves work between
/// independent simulated timelines.
///
/// # Panics
///
/// When the pool is empty or a subdomain's temporaries exceed every
/// device's arena (see
/// [`ClusterPlanError`](crate::schedule::ClusterPlanError)).
#[deprecated(
    since = "0.2.0",
    note = "use AssemblySession::new(Backend::cluster_with(pool, opts), cfg).assemble(items)"
)]
pub fn assemble_sc_batch_cluster(
    items: &[BatchItem<'_>],
    cfg: &ScConfig,
    pool: &DevicePool,
    opts: &ClusterOptions,
) -> ClusterResult {
    let out = batch_cluster_impl(items, cfg, pool, opts, false);
    ClusterResult {
        f: out.f,
        report: out.report,
    }
}

/// Outcome of the internal cluster driver, including the spill channel used
/// by [`Target::Hybrid`](crate::session::Target::Hybrid): subdomains that fit no
/// device arena keep their host-computed `F̃ᵢ` (the record phase computes
/// every subdomain's numerics host-side anyway) and are reported separately.
pub(crate) struct ClusterSpillOutcome<S: Scalar = f64> {
    /// Assembled local dual operators, batch order — **including** spilled
    /// subdomains (theirs come from the host record phase).
    pub f: Vec<MatOf<S>>,
    /// Per-device roll-up; spilled subdomains appear in no device report and
    /// hold `usize::MAX` in `device_of`.
    pub report: ClusterReport,
    /// Batch indices that fit no device arena, ascending.
    pub spilled: Vec<usize>,
    /// Host timings of the spilled subdomains, in spill order.
    pub spill_timings: Vec<SubdomainTiming>,
}

/// Two-level cluster driver over any [`BatchSource`]. With
/// `allow_spill = false` an over-arena subdomain panics with the
/// descriptive [`ClusterPlanError`](crate::schedule::ClusterPlanError);
/// with `allow_spill = true` it falls back to its host-computed `F̃ᵢ`.
pub(crate) fn batch_cluster_impl<S: Scalar, Src: BatchSource<S>>(
    src: Src,
    cfg: &ScConfig,
    pool: &DevicePool,
    opts: &ClusterOptions,
    allow_spill: bool,
) -> ClusterSpillOutcome<S> {
    if let Some(ready) = opts.ready_at.as_ref() {
        assert_eq!(
            ready.len(),
            src.len(),
            "ClusterOptions::ready_at must carry one readiness time per \
             batch item ({} given, {} items)",
            ready.len(),
            src.len()
        );
    }
    let t0 = Instant::now();
    if src.is_empty() {
        return ClusterSpillOutcome {
            f: Vec::new(),
            report: ClusterReport {
                per_device: vec![BatchReport::default(); pool.n_devices()],
                partition: vec![Vec::new(); pool.n_devices()],
                device_of: Vec::new(),
                makespan: 0.0,
                utilization: vec![0.0; pool.n_devices()],
                total_seconds: t0.elapsed().as_secs_f64(),
            },
            spilled: Vec::new(),
            spill_timings: Vec::new(),
        };
    }

    assert!(
        !pool.is_empty(),
        "cluster partition failed: {}",
        schedule::ClusterPlanError::NoDevices
    );

    // phase 1: record every subdomain **once** — the numerics, kernel
    // sequences, and cost estimates feed both planning levels, so a lazy
    // source's factor derivation runs once per subdomain
    let cache = BlockCutsCache::new();
    let ref_spec = pool.device(0).spec().clone();
    let recorded = record_scheduled_batch(&src, cfg, &ref_spec, &cache);

    // level 1: partition across devices, pricing each subdomain's recorded
    // kernel sequence under every device's own duration model — launch
    // overhead and occupancy included, so launch-bound batches do not
    // overload the card with the biggest peak-FLOP number
    let slots: Vec<schedule::DeviceSlot> = pool
        .devices()
        .iter()
        .map(|d| schedule::DeviceSlot::of(d))
        .collect();
    let costs: Vec<schedule::CostEstimate> = recorded.iter().map(|r| r.estimate.clone()).collect();
    let kernel_seconds: Vec<Vec<f64>> = recorded
        .iter()
        .map(|r| {
            slots
                .iter()
                .map(|s| r.costs.iter().map(|c| s.spec.kernel_seconds(c)).sum())
                .collect()
        })
        .collect();
    let (cplan, spilled) =
        schedule::cluster_spill_by_impl(&costs, &slots, |c, d| kernel_seconds[c.index][d])
            // documented batch-API contract: planning failure aborts. sc-analyze: allow(panic-surface)
            .unwrap_or_else(|e| panic!("cluster partition failed: {e}"));
    if !allow_spill && !spilled.is_empty() {
        // documented batch-API contract: spill without opt-in aborts. sc-analyze: allow(panic-surface)
        panic!(
            "cluster partition failed: {}",
            schedule::ClusterPlanError::Spilled {
                spilled,
                max_arena: schedule::max_usable_arena(&slots),
            }
        );
    }

    // level 2: each device plans its share with the single-device LPT
    // stream scheduler (estimates refined under *its own* duration model)
    // and replays it with arena admission, device-by-device for a
    // deterministic simulated timeline
    let mut per_device = Vec::with_capacity(pool.n_devices());
    let mut utilization = Vec::with_capacity(pool.n_devices());
    let mut makespan = 0.0f64;
    for (d, dev) in pool.devices().iter().enumerate() {
        let idx = &cplan.per_device[d];
        let sync0 = dev.synchronize();
        let busy0 = dev.busy_seconds();
        let refs: Vec<&Recorded<S>> = idx.iter().map(|&g| &recorded[g]).collect();
        // local estimates reuse the kernel-cost pricing already computed
        // for the partition — same duration model, priced once
        let estimates: Vec<schedule::CostEstimate> = idx
            .iter()
            .enumerate()
            .map(|(local, &g)| {
                let mut e = recorded[g].estimate.clone();
                e.index = local;
                e.seconds = kernel_seconds[g][d];
                e
            })
            .collect();
        let plan = schedule::plan_streams_impl(&estimates, dev.n_streams(), opts.policy);
        let ready_local: Option<Vec<f64>> = opts
            .ready_at
            .as_ref()
            .map(|r| idx.iter().map(|&g| r[g]).collect());
        let mut outcome = replay_recorded(dev, &refs, &estimates, &plan, ready_local.as_deref());
        let device_seconds = dev.synchronize() - sync0;

        // per-device report, indices remapped back to batch order
        let mut timings = Vec::with_capacity(idx.len());
        for (local, &g) in idx.iter().enumerate() {
            let (stream, span) = outcome.spans[local].expect("every subdomain was replayed");
            timings.push(SubdomainTiming {
                index: g,
                n_dofs: recorded[g].estimate.n_dofs,
                n_lambda: recorded[g].estimate.n_lambda,
                seconds: span.duration(),
                host_seconds: recorded[g].host_seconds,
                stream: Some(stream),
                span: Some(span),
                device: Some(d),
                node: None,
            });
        }
        let mut schedule_log = std::mem::take(&mut outcome.executed);
        for e in &mut schedule_log {
            e.index = idx[e.index];
        }
        makespan = makespan.max(device_seconds);
        let busy = dev.busy_seconds() - busy0;
        let cap = device_seconds * dev.n_streams().max(1) as f64; // sc-analyze: allow(precision-discipline)
        utilization.push(if cap > 0.0 { busy / cap } else { 0.0 });
        per_device.push(BatchReport {
            timings,
            total_seconds: 0.0, // stamped with the cluster wall time below
            device_seconds,
            schedule: schedule_log,
            temp_high_water: outcome.temp_high_water,
            // the block-cut cache is shared across the whole cluster; its
            // totals live on the first device's report so that summing
            // per-device counters (ClusterReport::combined) stays correct
            cache_hits: if d == 0 { cache.hits() } else { 0 },
            cache_misses: if d == 0 { cache.misses() } else { 0 },
            trace: Some(outcome.trace),
        });
    }

    // spilled subdomains keep their host-computed numerics; report them as
    // host timings (no stream, no device)
    let spill_timings: Vec<SubdomainTiming> = spilled
        .iter()
        .map(|&g| SubdomainTiming {
            index: g,
            n_dofs: recorded[g].estimate.n_dofs,
            n_lambda: recorded[g].estimate.n_lambda,
            seconds: recorded[g].host_seconds,
            host_seconds: recorded[g].host_seconds,
            stream: None,
            span: None,
            device: None,
            node: None,
        })
        .collect();
    let f: Vec<MatOf<S>> = recorded.into_iter().map(|r| r.f).collect();
    let total_seconds = t0.elapsed().as_secs_f64();
    for rep in &mut per_device {
        rep.total_seconds = total_seconds;
    }
    ClusterSpillOutcome {
        f,
        report: ClusterReport {
            per_device,
            partition: cplan.per_device,
            device_of: cplan.device_of,
            makespan,
            utilization,
            total_seconds,
        },
        spilled,
        spill_timings,
    }
}

/// An all-zero [`BatchResult`] for empty batches (no device interaction).
fn empty_batch_result<S: Scalar>() -> BatchResultOf<S> {
    BatchResultOf {
        f: Vec::new(),
        report: BatchReport::default(),
    }
}

/// Generic batched assembly over any [`Exec`] backend: `make_exec(i)` builds
/// the backend for subdomain `i` (e.g. binding it to a GPU stream).
#[deprecated(
    since = "0.2.0",
    note = "use AssemblySession with a Backend value; custom Exec fan-outs \
            can call assemble_sc_with_cache directly"
)]
pub fn assemble_sc_batch_with<E, F>(
    items: &[BatchItem<'_>],
    cfg: &ScConfig,
    make_exec: F,
) -> BatchResult
where
    E: Exec<f64>,
    F: Fn(usize) -> E + Sync + Send,
{
    run_batch(items.len(), |i, cache| {
        let item = &items[i];
        let mut exec = make_exec(i);
        let f = assemble_sc_with_cache(&mut exec, item.l, item.bt, cfg, Some(cache));
        (f, item.l.ncols(), item.bt.ncols())
    })
}

/// Shared fan-out/timing/report skeleton of the CPU batch drivers: `run(i,
/// cache)` assembles subdomain `i` and returns `(F̃ᵢ, n_dofs, n_lambda)`.
fn run_batch<S: Scalar, R>(count: usize, run: R) -> BatchResultOf<S>
where
    R: Fn(usize, &BlockCutsCache) -> (MatOf<S>, usize, usize) + Sync + Send,
{
    let cache = BlockCutsCache::new();
    let t0 = Instant::now();
    let assembled: Vec<(MatOf<S>, SubdomainTiming)> = (0..count)
        .into_par_iter()
        .map(|i| {
            let t = Instant::now();
            let (f, n_dofs, n_lambda) = run(i, &cache);
            let host_seconds = t.elapsed().as_secs_f64();
            let timing = SubdomainTiming {
                index: i,
                n_dofs,
                n_lambda,
                seconds: host_seconds,
                host_seconds,
                stream: None,
                span: None,
                device: None,
                node: None,
            };
            (f, timing)
        })
        .collect();
    let total_seconds = t0.elapsed().as_secs_f64();

    let mut f = Vec::with_capacity(assembled.len());
    let mut timings = Vec::with_capacity(assembled.len());
    for (mat, timing) in assembled {
        f.push(mat);
        timings.push(timing);
    }
    BatchResultOf {
        f,
        report: BatchReport {
            timings,
            total_seconds,
            device_seconds: 0.0,
            schedule: Vec::new(),
            temp_high_water: 0,
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            trace: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::assemble_sc;
    use crate::exec::CpuExec;
    use crate::schedule::StreamPolicy;
    use crate::trsm::FactorStorage;
    use sc_factor::{CholOptions, SparseCholesky};
    use sc_gpu::DeviceSpec;
    use sc_sparse::{Coo, Csc};

    /// A small family of SPD matrices + gluing blocks mimicking a cluster of
    /// equal-size subdomains with slightly different couplings.
    fn cluster(nsub: usize, nx: usize, m: usize) -> Vec<(Csc, Csc)> {
        (0..nsub)
            .map(|s| {
                let n = nx * nx;
                let idx = |x: usize, y: usize| y * nx + x;
                let mut c = Coo::new(n, n);
                for y in 0..nx {
                    for x in 0..nx {
                        let v = idx(x, y);
                        c.push(v, v, 4.05 + 0.01 * s as f64);
                        if x > 0 {
                            c.push(v, idx(x - 1, y), -1.0);
                        }
                        if x + 1 < nx {
                            c.push(v, idx(x + 1, y), -1.0);
                        }
                        if y > 0 {
                            c.push(v, idx(x, y - 1), -1.0);
                        }
                        if y + 1 < nx {
                            c.push(v, idx(x, y + 1), -1.0);
                        }
                    }
                }
                let k = c.to_csc();
                let mut b = Coo::new(n, m);
                for j in 0..m {
                    let d = (j * 7919 + s * 131) % n;
                    b.push(d, j, if (j + s).is_multiple_of(2) { 1.0 } else { -1.0 });
                }
                (k, b.to_csc())
            })
            .collect()
    }

    fn factorized(cluster: &[(Csc, Csc)]) -> Vec<(Csc, Csc)> {
        cluster
            .iter()
            .map(|(k, bt)| {
                let chol = SparseCholesky::factorize(k, CholOptions::default()).unwrap();
                (chol.factor_csc(), bt.permute_rows(chol.perm()))
            })
            .collect()
    }

    /// A size-skewed cluster: subdomain grid sizes cycling through `sizes`.
    fn skewed_cluster(nsub: usize, sizes: &[usize], m: usize) -> Vec<(Csc, Csc)> {
        (0..nsub)
            .flat_map(|s| {
                let nx = sizes[s % sizes.len()];
                cluster(1, nx, m.min(nx * nx))
            })
            .collect()
    }

    #[test]
    fn batch_matches_sequential_bitwise() {
        let data = factorized(&cluster(9, 7, 12));
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        for cfg in [
            ScConfig::optimized(false, false),
            ScConfig::optimized(false, true),
            ScConfig::original(FactorStorage::Sparse),
            ScConfig::Auto,
        ] {
            let batch = batch_cpu(items.as_slice(), &cfg);
            assert_eq!(batch.f.len(), items.len());
            for (i, (l, bt)) in data.iter().enumerate() {
                let seq = assemble_sc(&mut CpuExec, l, bt, &cfg);
                assert_eq!(
                    batch.f[i], seq,
                    "batched F̃ must equal sequential F̃ bitwise (subdomain {i})"
                );
            }
        }
    }

    #[test]
    fn cache_is_shared_across_equal_subdomains() {
        let data = factorized(&cluster(8, 6, 10));
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let cfg = ScConfig::optimized(false, false);
        let batch = batch_cpu(items.as_slice(), &cfg);
        let r = &batch.report;
        // Equal-size subdomains: after the first resolution per (param, n)
        // the rest must hit. With 8 subdomains there are far more lookups
        // than distinct keys.
        assert!(
            r.cache_hits > r.cache_misses,
            "expected mostly hits, got {} hits / {} misses",
            r.cache_hits,
            r.cache_misses
        );
        assert_eq!(r.timings.len(), 8);
        assert!(r.timings.iter().all(|t| t.seconds >= 0.0));
        assert!(r.timings.iter().all(|t| t.host_seconds >= 0.0));
        assert!(r.total_seconds > 0.0);
        assert!(r.cpu_seconds() > 0.0);
        assert_eq!(r.device_seconds, 0.0, "CPU batch has no device makespan");
    }

    #[test]
    fn gpu_batch_matches_cpu_batch_and_advances_timeline() {
        let data = factorized(&cluster(8, 6, 10));
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let cfg = ScConfig::optimized(true, false);
        let cpu = batch_cpu(items.as_slice(), &cfg);
        let dev = Device::new(DeviceSpec::a100(), 4);
        let gpu = batch_gpu_rr(items.as_slice(), &cfg, &dev);
        for i in 0..items.len() {
            assert_eq!(cpu.f[i], gpu.f[i], "backend mismatch at subdomain {i}");
        }
        assert!(dev.synchronize() > 0.0, "device timeline must advance");
        assert!(gpu.report.device_seconds > 0.0);
    }

    #[test]
    fn gpu_timings_are_simulated_and_bounded_by_makespan() {
        // the GPU path must report simulated stream seconds, not host wall
        // time: each subdomain's span lives on one stream, spans on a stream
        // do not overlap, so their sum is at most sync × n_streams
        let data = factorized(&cluster(10, 7, 12));
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let cfg = ScConfig::optimized(true, false);
        let dev = Device::new(DeviceSpec::a100(), 3);
        let gpu = batch_gpu_rr(items.as_slice(), &cfg, &dev);
        let sync = dev.synchronize();
        let sum: f64 = gpu.report.timings.iter().map(|t| t.seconds).sum();
        assert!(
            sum <= sync * dev.n_streams() as f64 + 1e-12,
            "Σ simulated subdomain seconds {sum} must be ≤ sync {sync} × {} streams",
            dev.n_streams()
        );
        for t in &gpu.report.timings {
            let span = t.span.expect("GPU timings carry spans");
            assert!((span.duration() - t.seconds).abs() < 1e-15);
            assert!(t.stream.is_some());
            assert!(t.host_seconds >= 0.0);
            assert!(span.end <= sync + 1e-15);
        }
        // spans within one stream must not overlap
        for s in 0..dev.n_streams() {
            let mut spans: Vec<SimSpan> = gpu
                .report
                .timings
                .iter()
                .filter(|t| t.stream == Some(s))
                .map(|t| t.span.unwrap())
                .collect();
            spans.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
            for w in spans.windows(2) {
                assert!(
                    w[1].start >= w[0].end - 1e-15,
                    "stream {s}: spans overlap: {w:?}"
                );
            }
        }
    }

    #[test]
    fn scheduled_matches_sequential_bitwise_and_is_deterministic() {
        let data = factorized(&skewed_cluster(12, &[4, 9, 6, 12], 10));
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        for cfg in [ScConfig::optimized(true, false), ScConfig::Auto] {
            let dev = Device::new(DeviceSpec::a100(), 4);
            let a = batch_scheduled(items.as_slice(), &cfg, &dev, &ScheduleOptions::default());
            for (i, (l, bt)) in data.iter().enumerate() {
                // sequential host reference; RecordingExec resolves Auto with
                // the same GPU-platform flag the scheduled driver uses while
                // computing on the CPU kernels
                let seq = assemble_sc(&mut RecordingExec::new(), l, bt, &cfg);
                assert_eq!(a.f[i], seq, "scheduled F̃ must be bitwise sequential ({i})");
                if matches!(cfg, ScConfig::Fixed(_)) {
                    let cpu = assemble_sc(&mut CpuExec, l, bt, &cfg);
                    assert_eq!(a.f[i], cpu, "fixed configs match the CPU backend bitwise");
                }
            }
            // reproducible simulated timeline on a fresh device
            let dev2 = Device::new(DeviceSpec::a100(), 4);
            let b = batch_scheduled(items.as_slice(), &cfg, &dev2, &ScheduleOptions::default());
            assert_eq!(dev.synchronize(), dev2.synchronize());
            for (x, y) in a.report.schedule.iter().zip(&b.report.schedule) {
                assert_eq!(x.index, y.index);
                assert_eq!(x.stream, y.stream);
                assert_eq!(x.span, y.span);
            }
        }
    }

    #[test]
    fn scheduled_beats_round_robin_on_skewed_batch() {
        // ≥ 16 subdomains with ≥ 4× dof spread (16 vs 144 dofs): the
        // acceptance workload of the scheduler
        let data = factorized(&skewed_cluster(16, &[12, 4, 4, 4], 10));
        assert!(data.len() >= 16);
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let cfg = ScConfig::optimized(true, false);

        let dev_rr = Device::new(DeviceSpec::a100(), 4);
        let rr = batch_scheduled(
            items.as_slice(),
            &cfg,
            &dev_rr,
            &ScheduleOptions::default().with_policy(StreamPolicy::RoundRobin),
        );
        let dev_s = Device::new(DeviceSpec::a100(), 4);
        let sched = batch_scheduled(items.as_slice(), &cfg, &dev_s, &ScheduleOptions::default());
        assert!(
            dev_s.synchronize() < dev_rr.synchronize(),
            "LPT schedule {} must beat round-robin {}",
            dev_s.synchronize(),
            dev_rr.synchronize()
        );
        for i in 0..items.len() {
            assert_eq!(rr.f[i], sched.f[i], "policy must not change numerics");
        }
    }

    #[test]
    fn scheduled_admission_respects_arena_capacity() {
        // a tiny device: the arena holds one subdomain's temporaries but not
        // two, so admissions must serialize
        let data = factorized(&cluster(6, 8, 14));
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let spec = DeviceSpec {
            memory_bytes: 128 * 1024, // 64 KiB arena
            ..DeviceSpec::a100()
        };
        let dev = Device::new(spec, 4);
        let capacity = dev.temp_pool().capacity();
        let res = batch_scheduled(
            items.as_slice(),
            &ScConfig::optimized(true, false),
            &dev,
            &ScheduleOptions::default(),
        );
        assert!(res.report.temp_high_water <= capacity);
        assert!(res.report.temp_high_water > 0);
        assert_eq!(res.report.schedule.len(), items.len());
        // at least one stream must have stalled for the arena: its subdomain
        // was admitted strictly after the stream's previous work ended (no
        // ready_at is set, so nothing else can delay admission)
        let mut prev_end = vec![0.0f64; dev.n_streams()];
        let mut waited = false;
        for e in &res.report.schedule {
            if e.admitted_at > prev_end[e.stream] + 1e-15 {
                waited = true;
            }
            prev_end[e.stream] = e.span.end;
        }
        assert!(waited, "tiny arena must force admission waits");

        // control: with the full A100 arena the same batch never stalls
        let dev_big = Device::new(DeviceSpec::a100(), 4);
        let res_big = batch_scheduled(
            items.as_slice(),
            &ScConfig::optimized(true, false),
            &dev_big,
            &ScheduleOptions::default(),
        );
        let mut prev_end = vec![0.0f64; dev_big.n_streams()];
        for e in &res_big.report.schedule {
            assert!(
                e.admitted_at <= prev_end[e.stream] + 1e-15,
                "unconstrained arena must admit without stalls (subdomain {})",
                e.index
            );
            prev_end[e.stream] = e.span.end;
        }
    }

    #[test]
    fn scheduled_mix_applies_host_readiness() {
        let data = factorized(&cluster(4, 6, 8));
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let dev = Device::new(DeviceSpec::a100(), 2);
        let ready = vec![0.5, 0.25, 0.0, 1.0];
        let res = batch_scheduled(
            items.as_slice(),
            &ScConfig::optimized(true, false),
            &dev,
            &ScheduleOptions::default()
                .with_policy(StreamPolicy::LptLeastLoaded)
                .with_ready_at(ready.clone()),
        );
        for e in &res.report.schedule {
            assert!(
                e.span.start >= ready[e.index] - 1e-15,
                "subdomain {} started at {} before its host readiness {}",
                e.index,
                e.span.start,
                ready[e.index]
            );
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let empty: &[BatchItem] = &[];
        let batch = batch_cpu(empty, &ScConfig::optimized(false, false));
        assert!(batch.f.is_empty());
        assert_eq!(batch.report.cache_hits + batch.report.cache_misses, 0);
        let dev = Device::new(DeviceSpec::a100(), 2);
        let gpu = batch_gpu_rr(empty, &ScConfig::optimized(true, false), &dev);
        assert!(gpu.f.is_empty());
        let sched = batch_scheduled(empty, &ScConfig::Auto, &dev, &ScheduleOptions::default());
        assert!(sched.f.is_empty());
        assert!(sched.report.schedule.is_empty());
        // empty batches never touch the device timeline
        assert_eq!(dev.synchronize(), 0.0);
        assert_eq!(dev.launches(), 0);
        // cluster driver: clean empty report, even on an empty pool
        let pool = DevicePool::uniform(DeviceSpec::a100(), 2, 2);
        let cl = batch_cluster_impl(
            empty,
            &ScConfig::Auto,
            &pool,
            &ClusterOptions::default(),
            false,
        );
        assert!(cl.f.is_empty());
        assert_eq!(cl.report.n_devices(), 2);
        assert_eq!(cl.report.makespan, 0.0);
        assert!(cl.report.device_of.is_empty());
        let none = DevicePool::from_devices(Vec::new());
        let cl = batch_cluster_impl(
            empty,
            &ScConfig::Auto,
            &none,
            &ClusterOptions::default(),
            false,
        );
        assert!(cl.f.is_empty() && cl.report.per_device.is_empty());
    }

    #[test]
    fn zero_stream_devices_are_rejected_with_a_clear_error() {
        let data = factorized(&cluster(2, 5, 6));
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let cfg = ScConfig::optimized(true, false);
        // empty batches are fine even on a 0-stream device
        let empty: &[BatchItem] = &[];
        let dev0 = Device::new(DeviceSpec::a100(), 0);
        assert!(batch_gpu_rr(empty, &cfg, &dev0).f.is_empty());
        assert!(
            batch_scheduled(empty, &cfg, &dev0, &ScheduleOptions::default())
                .f
                .is_empty()
        );
        // non-empty batches fail with a descriptive message, not an index panic
        for run in [true, false] {
            let items = items.clone();
            let dev = Device::new(DeviceSpec::a100(), 0);
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if run {
                    batch_gpu_rr(items.as_slice(), &cfg, &dev);
                } else {
                    batch_scheduled(items.as_slice(), &cfg, &dev, &ScheduleOptions::default());
                }
            }))
            .unwrap_err();
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
            assert!(msg.contains("0 streams"), "unexpected panic: {msg}");
        }
    }

    #[test]
    fn cluster_matches_sequential_bitwise_and_places_each_subdomain_once() {
        let data = factorized(&skewed_cluster(12, &[4, 9, 6, 12], 10));
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        for cfg in [ScConfig::optimized(true, false), ScConfig::Auto] {
            let pool = DevicePool::uniform(DeviceSpec::a100(), 3, 2);
            let res = batch_cluster_impl(
                items.as_slice(),
                &cfg,
                &pool,
                &ClusterOptions::default(),
                false,
            );
            for (i, (l, bt)) in data.iter().enumerate() {
                let seq = assemble_sc(&mut RecordingExec::new(), l, bt, &cfg);
                assert_eq!(res.f[i], seq, "cluster F̃ must be bitwise sequential ({i})");
                if matches!(cfg, ScConfig::Fixed(_)) {
                    let cpu = assemble_sc(&mut CpuExec, l, bt, &cfg);
                    assert_eq!(res.f[i], cpu, "fixed configs match the CPU backend bitwise");
                }
            }
            // partition integrity
            let mut seen: Vec<usize> = res.report.partition.concat();
            seen.sort_unstable();
            assert_eq!(seen, (0..items.len()).collect::<Vec<_>>());
            assert_eq!(res.report.device_of.len(), items.len());
            for (i, &d) in res.report.device_of.iter().enumerate() {
                assert!(res.report.partition[d].contains(&i));
            }
            // roll-up consistency
            assert_eq!(
                res.report.makespan,
                res.report
                    .per_device
                    .iter()
                    .map(|r| r.device_seconds)
                    .fold(0.0, f64::max)
            );
            let combined = res.report.combined();
            assert_eq!(combined.timings.len(), items.len());
            for (i, t) in combined.timings.iter().enumerate() {
                assert_eq!(t.index, i, "combined timings must be in batch order");
            }
            assert!(res
                .report
                .utilization
                .iter()
                .all(|&u| (0.0..=1.0).contains(&u)));
        }
    }

    #[test]
    fn cluster_beats_single_device_on_skewed_batches() {
        let data = factorized(&skewed_cluster(16, &[12, 4, 6, 3], 10));
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let cfg = ScConfig::optimized(true, false);
        let one = DevicePool::uniform(DeviceSpec::a100(), 1, 4);
        let r1 = batch_cluster_impl(
            items.as_slice(),
            &cfg,
            &one,
            &ClusterOptions::default(),
            false,
        );
        let four = DevicePool::uniform(DeviceSpec::a100(), 4, 4);
        let r4 = batch_cluster_impl(
            items.as_slice(),
            &cfg,
            &four,
            &ClusterOptions::default(),
            false,
        );
        assert!(
            r4.report.makespan < r1.report.makespan,
            "4 devices ({}) must beat 1 device ({})",
            r4.report.makespan,
            r1.report.makespan
        );
        // the single-device cluster path is exactly the scheduled driver
        let dev = Device::new(DeviceSpec::a100(), 4);
        let sched = batch_scheduled(items.as_slice(), &cfg, &dev, &ScheduleOptions::default());
        assert_eq!(r1.report.makespan, sched.report.device_seconds);
        for i in 0..items.len() {
            assert_eq!(r1.f[i], sched.f[i]);
            assert_eq!(r1.f[i], r4.f[i], "device count must not change numerics");
        }
    }

    #[test]
    fn heterogeneous_pool_falls_back_to_the_big_card() {
        // big subdomains whose temporaries exceed the tiny card's 512 KiB
        // arena (8 n m > 2¹⁹ needs n·m > 65536): the planner must route
        // them to the A100, small ones may go anywhere
        let data = factorized(&skewed_cluster(4, &[31, 3], 70));
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let cfg = ScConfig::optimized(true, false);
        let pool =
            DevicePool::heterogeneous(&[DeviceSpec::a100(), DeviceSpec::tiny_test_device()], 2);
        let tiny_arena = pool.device(1).temp_pool().capacity();
        let spec = pool.device(0).spec().clone();
        let mut oversized = 0;
        for (i, it) in items.iter().enumerate() {
            let params = cfg.resolve(true, it.l, it.bt);
            let est = crate::schedule::estimate_cost(&spec, it.l, it.bt, &params, i);
            if est.temp_bytes > tiny_arena {
                oversized += 1;
            }
        }
        assert!(
            oversized > 0,
            "workload must contain tiny-card-oversized subdomains"
        );
        let res = batch_cluster_impl(
            items.as_slice(),
            &cfg,
            &pool,
            &ClusterOptions::default(),
            false,
        );
        for (i, it) in items.iter().enumerate() {
            let params = cfg.resolve(true, it.l, it.bt);
            let est = crate::schedule::estimate_cost(&spec, it.l, it.bt, &params, i);
            if est.temp_bytes > tiny_arena {
                assert_eq!(
                    res.report.device_of[i], 0,
                    "oversized subdomain {i} must run on the big card"
                );
            }
            let seq = assemble_sc(&mut CpuExec, it.l, it.bt, &cfg);
            assert_eq!(res.f[i], seq, "heterogeneous F̃ deviates at {i}");
        }
        // per-device arenas were never oversubscribed
        for (d, rep) in res.report.per_device.iter().enumerate() {
            assert!(rep.temp_high_water <= pool.device(d).temp_pool().capacity());
        }
    }

    #[test]
    fn cluster_mix_applies_host_readiness() {
        let data = factorized(&cluster(6, 6, 8));
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let pool = DevicePool::uniform(DeviceSpec::a100(), 2, 2);
        let ready: Vec<f64> = (0..items.len()).map(|i| 0.25 * i as f64).collect();
        let res = batch_cluster_impl(
            items.as_slice(),
            &ScConfig::optimized(true, false),
            &pool,
            &ClusterOptions::default()
                .with_policy(StreamPolicy::LptLeastLoaded)
                .with_ready_at(ready.clone()),
            false,
        );
        for rep in &res.report.per_device {
            for e in &rep.schedule {
                assert!(
                    e.span.start >= ready[e.index] - 1e-15,
                    "subdomain {} started at {} before its readiness {}",
                    e.index,
                    e.span.start,
                    ready[e.index]
                );
            }
        }
    }

    #[test]
    fn cluster_routes_around_a_zero_stream_device() {
        // a pool carrying a drained (0-stream) card next to a working one:
        // the planner must keep the dead card idle instead of stranding
        // subdomains on it
        let data = factorized(&cluster(5, 6, 8));
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let cfg = ScConfig::optimized(true, false);
        let pool = DevicePool::from_devices(vec![
            Device::new(DeviceSpec::a100(), 0),
            Device::new(DeviceSpec::a100(), 4),
        ]);
        let res = batch_cluster_impl(
            items.as_slice(),
            &cfg,
            &pool,
            &ClusterOptions::default(),
            false,
        );
        assert!(
            res.report.partition[0].is_empty(),
            "dead card must stay idle"
        );
        assert_eq!(res.report.partition[1].len(), items.len());
        assert_eq!(pool.device(0).synchronize(), 0.0);
        for (i, (l, bt)) in data.iter().enumerate() {
            let seq = assemble_sc(&mut CpuExec, l, bt, &cfg);
            assert_eq!(res.f[i], seq, "subdomain {i} deviates");
        }
    }

    #[test]
    fn cluster_panics_when_a_subdomain_fits_nowhere() {
        // 8 n m = 8 · 1024 · 80 = 640 KiB of temporaries > the tiny card's
        // 512 KiB arena, on every device of the pool
        let data = factorized(&cluster(1, 32, 80));
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let pool = DevicePool::uniform(DeviceSpec::tiny_test_device(), 2, 2);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = batch_cluster_impl(
                items.as_slice(),
                &ScConfig::optimized(true, false),
                &pool,
                &ClusterOptions::default(),
                false,
            );
        }))
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(
            msg.contains("cluster partition failed"),
            "unexpected panic: {msg}"
        );
    }

    #[test]
    fn empty_and_one_column_subdomains_assemble_cleanly() {
        // a batch mixing a zero-lambda subdomain (empty B̃ᵀ), a one-column
        // subdomain, and a regular one — every driver must return the
        // degenerate 0×0 / 1×1 F̃ cleanly
        let base = factorized(&cluster(1, 6, 9));
        let (l_reg, bt_reg) = base[0].clone();
        let n = l_reg.ncols();
        let bt_empty = Csc::zeros(n, 0);
        let mut one = Coo::new(n, 1);
        one.push(n / 2, 0, 1.0);
        let bt_one = one.to_csc();
        let data = [
            (l_reg.clone(), bt_empty),
            (l_reg.clone(), bt_one),
            (l_reg, bt_reg),
        ];
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        for cfg in [
            ScConfig::optimized(false, false),
            ScConfig::optimized(true, true),
            ScConfig::original(FactorStorage::Dense),
            ScConfig::Auto,
        ] {
            let batch = batch_cpu(items.as_slice(), &cfg);
            assert_eq!(batch.f[0].nrows(), 0);
            assert_eq!(batch.f[0].ncols(), 0);
            assert_eq!(batch.f[1].nrows(), 1);
            assert!(batch.f[1][(0, 0)] > 0.0, "1×1 F̃ must be positive");
            let dev = Device::new(DeviceSpec::a100(), 2);
            let gpu = batch_gpu_rr(items.as_slice(), &cfg, &dev);
            let sched = batch_scheduled(items.as_slice(), &cfg, &dev, &ScheduleOptions::default());
            for i in 0..items.len() {
                assert_eq!(batch.f[i], gpu.f[i], "gpu mismatch at {i}");
                assert_eq!(batch.f[i], sched.f[i], "scheduled mismatch at {i}");
            }
        }
    }
}
