//! Parallel batched multi-subdomain assembly.
//!
//! The paper's production setting (like its CUDA predecessor, arXiv:2502.08382)
//! assembles the dense local dual operators `F̃ᵢ` of **hundreds of subdomains
//! per cluster**, one OpenMP thread per subdomain. This module is that loop:
//! [`assemble_sc_batch`] fans the per-subdomain [`assemble_sc`](crate::assemble_sc) pipelines out
//! over rayon, sharing one [`BlockCutsCache`] so that equal-shape subdomains
//! (the overwhelmingly common case on regular decompositions) resolve their
//! [`BlockParam`](crate::tune::BlockParam) partitions exactly once, and
//! recording per-subdomain timings for load-balance diagnostics.
//!
//! Three GPU drivers exist:
//!
//! - [`assemble_sc_batch_gpu`] — the paper's 16-stream submission loop with
//!   **round-robin** stream assignment: one host worker per stream, each
//!   processing its subdomains in index order;
//! - [`assemble_sc_batch_scheduled`] — the **memory-aware, cost-model-driven
//!   scheduler** of [`crate::schedule`] (paper §4.4): LPT ordering onto the
//!   least-loaded stream, admission against the device's temporary arena
//!   ("wait"), optional host-readiness overlap ("mix"), and a deterministic
//!   record-then-replay execution so the simulated timeline is reproducible
//!   run to run;
//! - the `_map` variants of both, which derive each subdomain's factor
//!   inside its own task (bounded peak memory for clusters with hundreds of
//!   subdomains).
//!
//! Results are **identical** to running [`assemble_sc`](crate::assemble_sc) per subdomain
//! sequentially: every subdomain's pipeline is independent and the cache only
//! memoizes block boundaries, not numerics (dedicated tests assert bitwise
//! equality for every driver).
//!
//! ## Clocks
//!
//! [`SubdomainTiming::seconds`] is **backend time**: simulated device
//! seconds on the GPU drivers (the subdomain's span on its stream), host
//! wall seconds on the CPU driver. [`SubdomainTiming::host_seconds`] is
//! always host wall time, so [`BatchReport::speedup`] compares commensurable
//! clocks; the GPU makespan lives in [`BatchReport::device_seconds`].

use crate::assemble::{assemble_sc_with_cache, ScConfig};
use crate::exec::{CpuExec, Exec, GpuExec, RecordingExec};
use crate::schedule::{self, ArenaSim, ScheduleOptions, ScheduledSpan};
use crate::tune::BlockCutsCache;
use rayon::prelude::*;
use sc_dense::Mat;
use sc_gpu::{Device, GpuKernels, SimSpan};
use sc_sparse::Csc;
use std::time::Instant;

/// Per-subdomain input to the batched assembler: the subdomain's Cholesky
/// factor and its gluing block with rows already in factor order (the same
/// pair [`assemble_sc`](crate::assemble_sc) takes).
#[derive(Clone, Copy)]
pub struct BatchItem<'a> {
    /// Cholesky factor of the regularized subdomain matrix (CSC, diag-first).
    pub l: &'a Csc,
    /// `B̃ᵢᵀ` with rows permuted into the factor's order.
    pub bt: &'a Csc,
}

/// Timing and shape record for one subdomain of a batch.
#[derive(Clone, Copy, Debug)]
pub struct SubdomainTiming {
    /// Position of the subdomain in the input batch.
    pub index: usize,
    /// Factor dimension (subdomain dof count).
    pub n_dofs: usize,
    /// Local multiplier count (order of `F̃ᵢ`).
    pub n_lambda: usize,
    /// Backend seconds of this subdomain's assembly: **simulated device
    /// time** (span end − span start on its stream) on the GPU drivers,
    /// host wall time on the CPU driver.
    pub seconds: f64,
    /// Host wall seconds spent in this subdomain's task (always a host
    /// clock — compare with [`BatchReport::total_seconds`], never with
    /// simulated time).
    pub host_seconds: f64,
    /// Stream the subdomain ran on (`None` on the CPU driver).
    pub stream: Option<usize>,
    /// Simulated execution span on that stream (`None` on the CPU driver).
    pub span: Option<SimSpan>,
}

/// Aggregate diagnostics of one batched assembly.
#[derive(Clone, Debug, Default)]
pub struct BatchReport {
    /// Per-subdomain timings, in batch order.
    pub timings: Vec<SubdomainTiming>,
    /// Host wall time of the whole batch (not the sum of per-subdomain times
    /// — the ratio of the two is the achieved parallel speedup).
    pub total_seconds: f64,
    /// Simulated device makespan of the batch (`device.synchronize()` delta
    /// across the call); 0 on the CPU driver.
    pub device_seconds: f64,
    /// Executed schedule (one entry per subdomain, in execution order) on
    /// the scheduled GPU driver; empty otherwise.
    pub schedule: Vec<ScheduledSpan>,
    /// Peak simultaneous temporary-arena reservation of the executed
    /// schedule, bytes (0 when not scheduled).
    pub temp_high_water: usize,
    /// Block-cut resolutions served from the shared cache.
    pub cache_hits: usize,
    /// Block-cut resolutions computed fresh.
    pub cache_misses: usize,
}

impl BatchReport {
    /// Sum of per-subdomain **host** task times (the sequential-equivalent
    /// host cost).
    pub fn cpu_seconds(&self) -> f64 {
        self.timings.iter().map(|t| t.host_seconds).sum()
    }

    /// Sum of per-subdomain backend times (simulated device seconds on the
    /// GPU drivers).
    pub fn backend_seconds(&self) -> f64 {
        self.timings.iter().map(|t| t.seconds).sum()
    }

    /// Achieved host-side parallel speedup `cpu_seconds / total_seconds`
    /// (≥ 1 when the batch parallelizes, ~1 on a single worker). Both
    /// quantities are host wall clocks — simulated device time never enters
    /// this ratio.
    pub fn speedup(&self) -> f64 {
        if self.total_seconds > 0.0 {
            self.cpu_seconds() / self.total_seconds
        } else {
            1.0
        }
    }
}

/// Result of a batched assembly: one dense `F̃ᵢ` per input subdomain (batch
/// order preserved) plus timing/cache diagnostics.
pub struct BatchResult {
    /// Assembled local dual operators, indexed like the input batch.
    pub f: Vec<Mat>,
    /// Timing and cache diagnostics.
    pub report: BatchReport,
}

/// Assemble every subdomain's `F̃ᵢ` in parallel on the CPU.
///
/// One rayon task per subdomain — the paper's one-thread-per-subdomain
/// cluster loop — all sharing a single [`BlockCutsCache`].
pub fn assemble_sc_batch(items: &[BatchItem<'_>], cfg: &ScConfig) -> BatchResult {
    assemble_sc_batch_with(items, cfg, |_| CpuExec)
}

/// Assemble every subdomain's `F̃ᵢ` on the simulated GPU with **round-robin**
/// stream assignment: one host worker per stream (the paper's 16-stream
/// submission loop), stream `s` processing subdomains `s, s + n_streams, …`
/// in order. Each subdomain's factor + gluing upload (H2D) is charged to its
/// stream before the assembly kernels, so the simulated timeline includes
/// transfer cost. Call `device.synchronize()` afterwards for the simulated
/// device time, or read [`BatchReport::device_seconds`].
///
/// For the cost-model-driven alternative, see
/// [`assemble_sc_batch_scheduled`].
pub fn assemble_sc_batch_gpu(
    items: &[BatchItem<'_>],
    cfg: &ScConfig,
    device: &std::sync::Arc<Device>,
) -> BatchResult {
    assemble_sc_batch_gpu_map(
        items,
        cfg,
        device,
        |_, item| std::borrow::Cow::Borrowed(item.l),
        |item| item.bt,
    )
}

/// GPU variant of [`assemble_sc_batch_map`]: `prepare` yields each
/// subdomain's factor (borrowed when it already exists, owned when derived
/// inside the task), subdomains are round-robined over the device's streams
/// (one host worker per stream, in-order within a stream), and the
/// sequential `explicit_gpu` transfer pattern is reproduced per subdomain
/// (H2D factor + gluing upload before the kernels, placeholder D2H sync
/// after — the result stays resident on the device).
pub fn assemble_sc_batch_gpu_map<T, FP, FB>(
    items: &[T],
    cfg: &ScConfig,
    device: &std::sync::Arc<Device>,
    prepare: FP,
    bt_of: FB,
) -> BatchResult
where
    T: Sync,
    FP: for<'a> Fn(usize, &'a T) -> std::borrow::Cow<'a, Csc> + Sync + Send,
    FB: Fn(&T) -> &Csc + Sync + Send,
{
    let n_streams = device.n_streams().max(1);
    let cache = BlockCutsCache::new();
    let t0 = Instant::now();
    let sync0 = device.synchronize();
    // one worker per stream, so per-subdomain spans on a stream never
    // interleave (their sum is bounded by the stream's clock)
    let per_stream: Vec<Vec<(Mat, SubdomainTiming)>> = (0..n_streams)
        .into_par_iter()
        .map(|s| {
            let mut out = Vec::new();
            let mut i = s;
            while i < items.len() {
                let t_host = Instant::now();
                let item = &items[i];
                let l = prepare(i, item);
                let bt = bt_of(item);
                let kernels = GpuKernels::new(device.stream(s));
                kernels.upload_csc(&l);
                kernels.upload_csc(bt);
                let mut exec = GpuExec::new(&kernels);
                let f = assemble_sc_with_cache(&mut exec, &l, bt, cfg, Some(&cache));
                kernels.download_bytes(0); // result stays on device; placeholder sync
                let span = kernels
                    .captured_span()
                    .expect("GPU batch task submits at least the uploads");
                out.push((
                    f,
                    SubdomainTiming {
                        index: i,
                        n_dofs: l.ncols(),
                        n_lambda: bt.ncols(),
                        seconds: span.duration(),
                        host_seconds: t_host.elapsed().as_secs_f64(),
                        stream: Some(s),
                        span: Some(span),
                    },
                ));
                i += n_streams;
            }
            out
        })
        .collect();
    let device_seconds = device.synchronize() - sync0;
    let total_seconds = t0.elapsed().as_secs_f64();

    // stitch the per-stream outputs back into batch order
    let count = items.len();
    let mut slots: Vec<Option<(Mat, SubdomainTiming)>> = (0..count).map(|_| None).collect();
    for chunk in per_stream {
        for entry in chunk {
            let idx = entry.1.index;
            slots[idx] = Some(entry);
        }
    }
    let mut f = Vec::with_capacity(count);
    let mut timings = Vec::with_capacity(count);
    for slot in slots {
        let (mat, timing) = slot.expect("every subdomain assembled exactly once");
        f.push(mat);
        timings.push(timing);
    }
    BatchResult {
        f,
        report: BatchReport {
            timings,
            total_seconds,
            device_seconds,
            schedule: Vec::new(),
            temp_high_water: 0,
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
        },
    }
}

/// Assemble a batch on the simulated GPU through the §4.4 scheduler
/// ([`crate::schedule`]): per-subdomain costs are estimated from the stepped
/// pattern, subdomains are ordered longest-first onto the least-loaded
/// stream (or round-robin, per [`ScheduleOptions::policy`]), and each
/// subdomain is admitted against the device's temporary-arena capacity
/// before its kernels replay onto its stream.
///
/// Execution is **record-then-replay**: numerics run host-parallel through
/// [`RecordingExec`] (bitwise identical to the CPU path), then the recorded
/// kernel sequences replay serially into the device timeline in
/// deterministic stream-clock order — the simulated timeline is reproducible
/// run to run, unlike live multi-threaded submission.
pub fn assemble_sc_batch_scheduled(
    items: &[BatchItem<'_>],
    cfg: &ScConfig,
    device: &std::sync::Arc<Device>,
    opts: &ScheduleOptions,
) -> BatchResult {
    assemble_sc_batch_scheduled_map(
        items,
        cfg,
        device,
        opts,
        |_, item| std::borrow::Cow::Borrowed(item.l),
        |item| item.bt,
    )
}

/// [`assemble_sc_batch_scheduled`] with per-task factor derivation (the
/// `_map` shape used by [`FetiSolver`]-style callers whose factors are
/// extracted per subdomain).
///
/// [`FetiSolver`]: ../../sc_feti/struct.FetiSolver.html
pub fn assemble_sc_batch_scheduled_map<T, FP, FB>(
    items: &[T],
    cfg: &ScConfig,
    device: &std::sync::Arc<Device>,
    opts: &ScheduleOptions,
    prepare: FP,
    bt_of: FB,
) -> BatchResult
where
    T: Sync,
    FP: for<'a> Fn(usize, &'a T) -> std::borrow::Cow<'a, Csc> + Sync + Send,
    FB: Fn(&T) -> &Csc + Sync + Send,
{
    let n_streams = device.n_streams().max(1);
    let cache = BlockCutsCache::new();
    let t0 = Instant::now();
    let sync0 = device.synchronize();
    let spec = device.spec().clone();
    if let Some(ready) = opts.ready_at.as_ref() {
        assert_eq!(
            ready.len(),
            items.len(),
            "ScheduleOptions::ready_at must carry one readiness time per \
             batch item ({} given, {} items)",
            ready.len(),
            items.len()
        );
    }

    // --- phase 1: host-parallel compute + cost recording -------------------
    struct Recorded {
        f: Mat,
        costs: Vec<sc_gpu::KernelCost>,
        estimate: schedule::CostEstimate,
        host_seconds: f64,
    }
    let mut recorded: Vec<Recorded> = (0..items.len())
        .into_par_iter()
        .map(|i| {
            let t_host = Instant::now();
            let item = &items[i];
            let l = prepare(i, item);
            let bt = bt_of(item);
            let params = cfg.resolve(true, &l, bt);
            let estimate = schedule::estimate_cost(&spec, &l, bt, &params, i);
            let mut rec = RecordingExec::new();
            rec.record_upload_csc(&l);
            rec.record_upload_csc(bt);
            let f = assemble_sc_with_cache(&mut rec, &l, bt, cfg, Some(&cache));
            rec.record_download_bytes(0); // result stays on device
            Recorded {
                f,
                costs: rec.into_costs(),
                estimate,
                host_seconds: t_host.elapsed().as_secs_f64(),
            }
        })
        .collect();

    // --- phase 2: plan + deterministic replay onto the device --------------
    // refine the analytic ordering key with the recorded kernel sequence
    // priced by the device's own duration model: at small sizes per-launch
    // overhead dominates raw FLOPs, and the recorder has the exact launch
    // count in hand before anything replays
    let estimates: Vec<schedule::CostEstimate> = recorded
        .iter()
        .map(|r| {
            let mut est = r.estimate.clone();
            est.seconds = r.costs.iter().map(|c| spec.kernel_seconds(c)).sum();
            est
        })
        .collect();
    let plan = schedule::plan(&estimates, n_streams, opts.policy);
    let mut arena = ArenaSim::new(device.temp_pool().capacity());
    let mut executed: Vec<ScheduledSpan> = Vec::with_capacity(items.len());
    let mut spans: Vec<Option<(usize, SimSpan)>> = vec![None; items.len()];
    // the replay merges the per-stream queues **kernel by kernel** in
    // stream-clock order: submitting a whole subdomain at once would hand
    // the concurrency slot heap a non-chronological sequence and serialize
    // streams that really overlap
    struct InFlight {
        index: usize,
        kpos: usize,
        admitted_at: f64,
        span: Option<SimSpan>,
        bytes: usize,
        handle: usize,
    }
    let mut next = vec![0usize; n_streams];
    let mut current: Vec<Option<InFlight>> = (0..n_streams).map(|_| None).collect();
    loop {
        // candidates in clock order (ties by id): streams with a kernel in
        // flight, or with a queued subdomain to admit
        let mut order: Vec<usize> = (0..n_streams)
            .filter(|&s| current[s].is_some() || next[s] < plan.assignments[s].len())
            .collect();
        if order.is_empty() {
            break;
        }
        order.sort_by(|&a, &b| {
            device
                .stream_time(a)
                .partial_cmp(&device.stream_time(b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut acted = false;
        for s in order {
            if let Some(fl) = current[s].as_mut() {
                // replay the subdomain's next kernel
                let k = device.submit(s, &recorded[fl.index].costs[fl.kpos], 0.0);
                fl.kpos += 1;
                fl.span = Some(match fl.span {
                    None => k,
                    Some(acc) => SimSpan {
                        start: acc.start,
                        end: k.end,
                    },
                });
                if fl.kpos == recorded[fl.index].costs.len() {
                    // last kernel replayed: release the arena reservation
                    let fl = current[s].take().expect("in flight");
                    let span = fl.span.unwrap_or(SimSpan {
                        start: fl.admitted_at,
                        end: fl.admitted_at,
                    });
                    arena.close(fl.handle, span.end);
                    executed.push(ScheduledSpan {
                        index: fl.index,
                        stream: s,
                        admitted_at: fl.admitted_at,
                        span,
                        temp_bytes: fl.bytes,
                    });
                    spans[fl.index] = Some((s, span));
                }
                acted = true;
                break;
            }
            let i = plan.assignments[s][next[s]];
            // "mix": the subdomain's host preparation finished at ready_at[i]
            if let Some(ready) = opts.ready_at.as_ref() {
                device.advance_stream(s, ready[i]);
            }
            // "wait": stall the stream until the arena can hold the
            // temporaries; blocked by an in-flight holder → let another
            // stream replay first
            let bytes = estimates[i].temp_bytes;
            let Some(admitted_at) = arena.try_admit(bytes, device.stream_time(s)) else {
                continue;
            };
            device.advance_stream(s, admitted_at);
            let handle = arena.open(admitted_at, bytes);
            current[s] = Some(InFlight {
                index: i,
                kpos: 0,
                admitted_at,
                span: None,
                bytes,
                handle,
            });
            next[s] += 1;
            acted = true;
            break;
        }
        assert!(
            acted,
            "scheduler deadlock: every stream blocked on the arena with \
             nothing in flight (admission bookkeeping bug)"
        );
    }
    let device_seconds = device.synchronize() - sync0;
    let temp_high_water = arena.high_water();

    // --- assemble the report in batch order --------------------------------
    let mut f = Vec::with_capacity(items.len());
    let mut timings = Vec::with_capacity(items.len());
    for (i, r) in recorded.drain(..).enumerate() {
        let (stream, span) = spans[i].expect("every subdomain was replayed");
        f.push(r.f);
        timings.push(SubdomainTiming {
            index: i,
            n_dofs: r.estimate.n_dofs,
            n_lambda: r.estimate.n_lambda,
            seconds: span.duration(),
            host_seconds: r.host_seconds,
            stream: Some(stream),
            span: Some(span),
        });
    }
    BatchResult {
        f,
        report: BatchReport {
            timings,
            total_seconds: t0.elapsed().as_secs_f64(),
            device_seconds,
            schedule: executed,
            temp_high_water,
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
        },
    }
}

/// Generic batched assembly over any [`Exec`] backend: `make_exec(i)` builds
/// the backend for subdomain `i` (e.g. binding it to a GPU stream).
pub fn assemble_sc_batch_with<E, F>(
    items: &[BatchItem<'_>],
    cfg: &ScConfig,
    make_exec: F,
) -> BatchResult
where
    E: Exec,
    F: Fn(usize) -> E + Sync + Send,
{
    run_batch(items.len(), |i, cache| {
        let item = &items[i];
        let mut exec = make_exec(i);
        let f = assemble_sc_with_cache(&mut exec, item.l, item.bt, cfg, Some(cache));
        (f, item.l.ncols(), item.bt.ncols())
    })
}

/// Batched assembly where each subdomain's factor is **derived inside its
/// own task** rather than precomputed: `prepare(i, item)` returns the owned
/// CSC factor (charging any upload cost to the backend as a side effect) and
/// `bt_of(item)` borrows the gluing block. Peak memory holds at most one
/// in-flight factor copy per worker thread instead of one per subdomain —
/// the right shape for clusters with hundreds of subdomains.
pub fn assemble_sc_batch_map<T, E, FE, FP, FB>(
    items: &[T],
    cfg: &ScConfig,
    make_exec: FE,
    prepare: FP,
    bt_of: FB,
) -> BatchResult
where
    T: Sync,
    E: Exec,
    FE: Fn(usize) -> E + Sync + Send,
    FP: Fn(usize, &T) -> Csc + Sync + Send,
    FB: Fn(&T) -> &Csc + Sync + Send,
{
    run_batch(items.len(), |i, cache| {
        let item = &items[i];
        let l = prepare(i, item);
        let bt = bt_of(item);
        let mut exec = make_exec(i);
        let f = assemble_sc_with_cache(&mut exec, &l, bt, cfg, Some(cache));
        (f, l.ncols(), bt.ncols())
    })
}

/// Shared fan-out/timing/report skeleton of the CPU batch drivers: `run(i,
/// cache)` assembles subdomain `i` and returns `(F̃ᵢ, n_dofs, n_lambda)`.
fn run_batch<R>(count: usize, run: R) -> BatchResult
where
    R: Fn(usize, &BlockCutsCache) -> (Mat, usize, usize) + Sync + Send,
{
    let cache = BlockCutsCache::new();
    let t0 = Instant::now();
    let assembled: Vec<(Mat, SubdomainTiming)> = (0..count)
        .into_par_iter()
        .map(|i| {
            let t = Instant::now();
            let (f, n_dofs, n_lambda) = run(i, &cache);
            let host_seconds = t.elapsed().as_secs_f64();
            let timing = SubdomainTiming {
                index: i,
                n_dofs,
                n_lambda,
                seconds: host_seconds,
                host_seconds,
                stream: None,
                span: None,
            };
            (f, timing)
        })
        .collect();
    let total_seconds = t0.elapsed().as_secs_f64();

    let mut f = Vec::with_capacity(assembled.len());
    let mut timings = Vec::with_capacity(assembled.len());
    for (mat, timing) in assembled {
        f.push(mat);
        timings.push(timing);
    }
    BatchResult {
        f,
        report: BatchReport {
            timings,
            total_seconds,
            device_seconds: 0.0,
            schedule: Vec::new(),
            temp_high_water: 0,
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::assemble_sc;
    use crate::schedule::StreamPolicy;
    use crate::trsm::FactorStorage;
    use sc_factor::{CholOptions, SparseCholesky};
    use sc_gpu::DeviceSpec;
    use sc_sparse::Coo;

    /// A small family of SPD matrices + gluing blocks mimicking a cluster of
    /// equal-size subdomains with slightly different couplings.
    fn cluster(nsub: usize, nx: usize, m: usize) -> Vec<(Csc, Csc)> {
        (0..nsub)
            .map(|s| {
                let n = nx * nx;
                let idx = |x: usize, y: usize| y * nx + x;
                let mut c = Coo::new(n, n);
                for y in 0..nx {
                    for x in 0..nx {
                        let v = idx(x, y);
                        c.push(v, v, 4.05 + 0.01 * s as f64);
                        if x > 0 {
                            c.push(v, idx(x - 1, y), -1.0);
                        }
                        if x + 1 < nx {
                            c.push(v, idx(x + 1, y), -1.0);
                        }
                        if y > 0 {
                            c.push(v, idx(x, y - 1), -1.0);
                        }
                        if y + 1 < nx {
                            c.push(v, idx(x, y + 1), -1.0);
                        }
                    }
                }
                let k = c.to_csc();
                let mut b = Coo::new(n, m);
                for j in 0..m {
                    let d = (j * 7919 + s * 131) % n;
                    b.push(d, j, if (j + s) % 2 == 0 { 1.0 } else { -1.0 });
                }
                (k, b.to_csc())
            })
            .collect()
    }

    fn factorized(cluster: &[(Csc, Csc)]) -> Vec<(Csc, Csc)> {
        cluster
            .iter()
            .map(|(k, bt)| {
                let chol = SparseCholesky::factorize(k, CholOptions::default()).unwrap();
                (chol.factor_csc(), bt.permute_rows(chol.perm()))
            })
            .collect()
    }

    /// A size-skewed cluster: subdomain grid sizes cycling through `sizes`.
    fn skewed_cluster(nsub: usize, sizes: &[usize], m: usize) -> Vec<(Csc, Csc)> {
        (0..nsub)
            .flat_map(|s| {
                let nx = sizes[s % sizes.len()];
                cluster(1, nx, m.min(nx * nx))
            })
            .collect()
    }

    #[test]
    fn batch_matches_sequential_bitwise() {
        let data = factorized(&cluster(9, 7, 12));
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        for cfg in [
            ScConfig::optimized(false, false),
            ScConfig::optimized(false, true),
            ScConfig::original(FactorStorage::Sparse),
            ScConfig::Auto,
        ] {
            let batch = assemble_sc_batch(&items, &cfg);
            assert_eq!(batch.f.len(), items.len());
            for (i, (l, bt)) in data.iter().enumerate() {
                let seq = assemble_sc(&mut CpuExec, l, bt, &cfg);
                assert_eq!(
                    batch.f[i], seq,
                    "batched F̃ must equal sequential F̃ bitwise (subdomain {i})"
                );
            }
        }
    }

    #[test]
    fn cache_is_shared_across_equal_subdomains() {
        let data = factorized(&cluster(8, 6, 10));
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let cfg = ScConfig::optimized(false, false);
        let batch = assemble_sc_batch(&items, &cfg);
        let r = &batch.report;
        // Equal-size subdomains: after the first resolution per (param, n)
        // the rest must hit. With 8 subdomains there are far more lookups
        // than distinct keys.
        assert!(
            r.cache_hits > r.cache_misses,
            "expected mostly hits, got {} hits / {} misses",
            r.cache_hits,
            r.cache_misses
        );
        assert_eq!(r.timings.len(), 8);
        assert!(r.timings.iter().all(|t| t.seconds >= 0.0));
        assert!(r.timings.iter().all(|t| t.host_seconds >= 0.0));
        assert!(r.total_seconds > 0.0);
        assert!(r.cpu_seconds() > 0.0);
        assert_eq!(r.device_seconds, 0.0, "CPU batch has no device makespan");
    }

    #[test]
    fn gpu_batch_matches_cpu_batch_and_advances_timeline() {
        let data = factorized(&cluster(8, 6, 10));
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let cfg = ScConfig::optimized(true, false);
        let cpu = assemble_sc_batch(&items, &cfg);
        let dev = Device::new(DeviceSpec::a100(), 4);
        let gpu = assemble_sc_batch_gpu(&items, &cfg, &dev);
        for i in 0..items.len() {
            assert_eq!(cpu.f[i], gpu.f[i], "backend mismatch at subdomain {i}");
        }
        assert!(dev.synchronize() > 0.0, "device timeline must advance");
        assert!(gpu.report.device_seconds > 0.0);
    }

    #[test]
    fn gpu_timings_are_simulated_and_bounded_by_makespan() {
        // the GPU path must report simulated stream seconds, not host wall
        // time: each subdomain's span lives on one stream, spans on a stream
        // do not overlap, so their sum is at most sync × n_streams
        let data = factorized(&cluster(10, 7, 12));
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let cfg = ScConfig::optimized(true, false);
        let dev = Device::new(DeviceSpec::a100(), 3);
        let gpu = assemble_sc_batch_gpu(&items, &cfg, &dev);
        let sync = dev.synchronize();
        let sum: f64 = gpu.report.timings.iter().map(|t| t.seconds).sum();
        assert!(
            sum <= sync * dev.n_streams() as f64 + 1e-12,
            "Σ simulated subdomain seconds {sum} must be ≤ sync {sync} × {} streams",
            dev.n_streams()
        );
        for t in &gpu.report.timings {
            let span = t.span.expect("GPU timings carry spans");
            assert!((span.duration() - t.seconds).abs() < 1e-15);
            assert!(t.stream.is_some());
            assert!(t.host_seconds >= 0.0);
            assert!(span.end <= sync + 1e-15);
        }
        // spans within one stream must not overlap
        for s in 0..dev.n_streams() {
            let mut spans: Vec<SimSpan> = gpu
                .report
                .timings
                .iter()
                .filter(|t| t.stream == Some(s))
                .map(|t| t.span.unwrap())
                .collect();
            spans.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
            for w in spans.windows(2) {
                assert!(
                    w[1].start >= w[0].end - 1e-15,
                    "stream {s}: spans overlap: {w:?}"
                );
            }
        }
    }

    #[test]
    fn scheduled_matches_sequential_bitwise_and_is_deterministic() {
        let data = factorized(&skewed_cluster(12, &[4, 9, 6, 12], 10));
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        for cfg in [ScConfig::optimized(true, false), ScConfig::Auto] {
            let dev = Device::new(DeviceSpec::a100(), 4);
            let a = assemble_sc_batch_scheduled(&items, &cfg, &dev, &ScheduleOptions::default());
            for (i, (l, bt)) in data.iter().enumerate() {
                // sequential host reference; RecordingExec resolves Auto with
                // the same GPU-platform flag the scheduled driver uses while
                // computing on the CPU kernels
                let seq = assemble_sc(&mut RecordingExec::new(), l, bt, &cfg);
                assert_eq!(a.f[i], seq, "scheduled F̃ must be bitwise sequential ({i})");
                if matches!(cfg, ScConfig::Fixed(_)) {
                    let cpu = assemble_sc(&mut CpuExec, l, bt, &cfg);
                    assert_eq!(a.f[i], cpu, "fixed configs match the CPU backend bitwise");
                }
            }
            // reproducible simulated timeline on a fresh device
            let dev2 = Device::new(DeviceSpec::a100(), 4);
            let b = assemble_sc_batch_scheduled(&items, &cfg, &dev2, &ScheduleOptions::default());
            assert_eq!(dev.synchronize(), dev2.synchronize());
            for (x, y) in a.report.schedule.iter().zip(&b.report.schedule) {
                assert_eq!(x.index, y.index);
                assert_eq!(x.stream, y.stream);
                assert_eq!(x.span, y.span);
            }
        }
    }

    #[test]
    fn scheduled_beats_round_robin_on_skewed_batch() {
        // ≥ 16 subdomains with ≥ 4× dof spread (16 vs 144 dofs): the
        // acceptance workload of the scheduler
        let data = factorized(&skewed_cluster(16, &[12, 4, 4, 4], 10));
        assert!(data.len() >= 16);
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let cfg = ScConfig::optimized(true, false);

        let dev_rr = Device::new(DeviceSpec::a100(), 4);
        let rr = assemble_sc_batch_scheduled(
            &items,
            &cfg,
            &dev_rr,
            &ScheduleOptions {
                policy: StreamPolicy::RoundRobin,
                ready_at: None,
            },
        );
        let dev_s = Device::new(DeviceSpec::a100(), 4);
        let sched = assemble_sc_batch_scheduled(&items, &cfg, &dev_s, &ScheduleOptions::default());
        assert!(
            dev_s.synchronize() < dev_rr.synchronize(),
            "LPT schedule {} must beat round-robin {}",
            dev_s.synchronize(),
            dev_rr.synchronize()
        );
        for i in 0..items.len() {
            assert_eq!(rr.f[i], sched.f[i], "policy must not change numerics");
        }
    }

    #[test]
    fn scheduled_admission_respects_arena_capacity() {
        // a tiny device: the arena holds one subdomain's temporaries but not
        // two, so admissions must serialize
        let data = factorized(&cluster(6, 8, 14));
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let spec = DeviceSpec {
            memory_bytes: 128 * 1024, // 64 KiB arena
            ..DeviceSpec::a100()
        };
        let dev = Device::new(spec, 4);
        let capacity = dev.temp_pool().capacity();
        let res = assemble_sc_batch_scheduled(
            &items,
            &ScConfig::optimized(true, false),
            &dev,
            &ScheduleOptions::default(),
        );
        assert!(res.report.temp_high_water <= capacity);
        assert!(res.report.temp_high_water > 0);
        assert_eq!(res.report.schedule.len(), items.len());
        // at least one stream must have stalled for the arena: its subdomain
        // was admitted strictly after the stream's previous work ended (no
        // ready_at is set, so nothing else can delay admission)
        let mut prev_end = vec![0.0f64; dev.n_streams()];
        let mut waited = false;
        for e in &res.report.schedule {
            if e.admitted_at > prev_end[e.stream] + 1e-15 {
                waited = true;
            }
            prev_end[e.stream] = e.span.end;
        }
        assert!(waited, "tiny arena must force admission waits");

        // control: with the full A100 arena the same batch never stalls
        let dev_big = Device::new(DeviceSpec::a100(), 4);
        let res_big = assemble_sc_batch_scheduled(
            &items,
            &ScConfig::optimized(true, false),
            &dev_big,
            &ScheduleOptions::default(),
        );
        let mut prev_end = vec![0.0f64; dev_big.n_streams()];
        for e in &res_big.report.schedule {
            assert!(
                e.admitted_at <= prev_end[e.stream] + 1e-15,
                "unconstrained arena must admit without stalls (subdomain {})",
                e.index
            );
            prev_end[e.stream] = e.span.end;
        }
    }

    #[test]
    fn scheduled_mix_applies_host_readiness() {
        let data = factorized(&cluster(4, 6, 8));
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let dev = Device::new(DeviceSpec::a100(), 2);
        let ready = vec![0.5, 0.25, 0.0, 1.0];
        let res = assemble_sc_batch_scheduled(
            &items,
            &ScConfig::optimized(true, false),
            &dev,
            &ScheduleOptions {
                policy: StreamPolicy::LptLeastLoaded,
                ready_at: Some(ready.clone()),
            },
        );
        for e in &res.report.schedule {
            assert!(
                e.span.start >= ready[e.index] - 1e-15,
                "subdomain {} started at {} before its host readiness {}",
                e.index,
                e.span.start,
                ready[e.index]
            );
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let batch = assemble_sc_batch(&[], &ScConfig::optimized(false, false));
        assert!(batch.f.is_empty());
        assert_eq!(batch.report.cache_hits + batch.report.cache_misses, 0);
        let dev = Device::new(DeviceSpec::a100(), 2);
        let gpu = assemble_sc_batch_gpu(&[], &ScConfig::optimized(true, false), &dev);
        assert!(gpu.f.is_empty());
        let sched =
            assemble_sc_batch_scheduled(&[], &ScConfig::Auto, &dev, &ScheduleOptions::default());
        assert!(sched.f.is_empty());
        assert!(sched.report.schedule.is_empty());
    }

    #[test]
    fn empty_and_one_column_subdomains_assemble_cleanly() {
        // a batch mixing a zero-lambda subdomain (empty B̃ᵀ), a one-column
        // subdomain, and a regular one — every driver must return the
        // degenerate 0×0 / 1×1 F̃ cleanly
        let base = factorized(&cluster(1, 6, 9));
        let (l_reg, bt_reg) = base[0].clone();
        let n = l_reg.ncols();
        let bt_empty = Csc::zeros(n, 0);
        let mut one = Coo::new(n, 1);
        one.push(n / 2, 0, 1.0);
        let bt_one = one.to_csc();
        let data = [
            (l_reg.clone(), bt_empty),
            (l_reg.clone(), bt_one),
            (l_reg, bt_reg),
        ];
        let items: Vec<BatchItem<'_>> = data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        for cfg in [
            ScConfig::optimized(false, false),
            ScConfig::optimized(true, true),
            ScConfig::original(FactorStorage::Dense),
            ScConfig::Auto,
        ] {
            let batch = assemble_sc_batch(&items, &cfg);
            assert_eq!(batch.f[0].nrows(), 0);
            assert_eq!(batch.f[0].ncols(), 0);
            assert_eq!(batch.f[1].nrows(), 1);
            assert!(batch.f[1][(0, 0)] > 0.0, "1×1 F̃ must be positive");
            let dev = Device::new(DeviceSpec::a100(), 2);
            let gpu = assemble_sc_batch_gpu(&items, &cfg, &dev);
            let sched =
                assemble_sc_batch_scheduled(&items, &cfg, &dev, &ScheduleOptions::default());
            for i in 0..items.len() {
                assert_eq!(batch.f[i], gpu.f[i], "gpu mismatch at {i}");
                assert_eq!(batch.f[i], sched.f[i], "scheduled mismatch at {i}");
            }
        }
    }
}
