//! Parallel batched multi-subdomain assembly.
//!
//! The paper's production setting (like its CUDA predecessor, arXiv:2502.08382)
//! assembles the dense local dual operators `F̃ᵢ` of **hundreds of subdomains
//! per cluster**, one OpenMP thread per subdomain. This module is that loop:
//! [`assemble_sc_batch`] fans the per-subdomain [`assemble_sc`] pipelines out
//! over rayon, sharing one [`BlockCutsCache`] so that equal-shape subdomains
//! (the overwhelmingly common case on regular decompositions) resolve their
//! [`BlockParam`](crate::tune::BlockParam) partitions exactly once, and
//! recording per-subdomain wall time for load-balance diagnostics.
//!
//! Results are **identical** to running [`assemble_sc`] per subdomain
//! sequentially: every subdomain's pipeline is independent and the cache only
//! memoizes block boundaries, not numerics (a dedicated test asserts bitwise
//! equality).

use crate::assemble::{assemble_sc_with_cache, ScConfig};
use crate::exec::{CpuExec, Exec, GpuExec};
use crate::tune::BlockCutsCache;
use rayon::prelude::*;
use sc_dense::Mat;
use sc_gpu::{Device, GpuKernels};
use sc_sparse::Csc;
use std::time::Instant;

/// Per-subdomain input to the batched assembler: the subdomain's Cholesky
/// factor and its gluing block with rows already in factor order (the same
/// pair [`assemble_sc`](crate::assemble_sc) takes).
#[derive(Clone, Copy)]
pub struct BatchItem<'a> {
    /// Cholesky factor of the regularized subdomain matrix (CSC, diag-first).
    pub l: &'a Csc,
    /// `B̃ᵢᵀ` with rows permuted into the factor's order.
    pub bt: &'a Csc,
}

/// Wall-time and shape record for one subdomain of a batch.
#[derive(Clone, Copy, Debug)]
pub struct SubdomainTiming {
    /// Position of the subdomain in the input batch.
    pub index: usize,
    /// Factor dimension (subdomain dof count).
    pub n_dofs: usize,
    /// Local multiplier count (order of `F̃ᵢ`).
    pub n_lambda: usize,
    /// Wall time of this subdomain's assembly, seconds.
    pub seconds: f64,
}

/// Aggregate diagnostics of one batched assembly.
#[derive(Clone, Debug, Default)]
pub struct BatchReport {
    /// Per-subdomain timings, in batch order.
    pub timings: Vec<SubdomainTiming>,
    /// Wall time of the whole batch (not the sum of per-subdomain times —
    /// the ratio of the two is the achieved parallel speedup).
    pub total_seconds: f64,
    /// Block-cut resolutions served from the shared cache.
    pub cache_hits: usize,
    /// Block-cut resolutions computed fresh.
    pub cache_misses: usize,
}

impl BatchReport {
    /// Sum of per-subdomain assembly times (the sequential-equivalent cost).
    pub fn cpu_seconds(&self) -> f64 {
        self.timings.iter().map(|t| t.seconds).sum()
    }

    /// Achieved parallel speedup `cpu_seconds / total_seconds` (≥ 1 when the
    /// batch parallelizes, ~1 on a single worker).
    pub fn speedup(&self) -> f64 {
        if self.total_seconds > 0.0 {
            self.cpu_seconds() / self.total_seconds
        } else {
            1.0
        }
    }
}

/// Result of a batched assembly: one dense `F̃ᵢ` per input subdomain (batch
/// order preserved) plus timing/cache diagnostics.
pub struct BatchResult {
    /// Assembled local dual operators, indexed like the input batch.
    pub f: Vec<Mat>,
    /// Timing and cache diagnostics.
    pub report: BatchReport,
}

/// Assemble every subdomain's `F̃ᵢ` in parallel on the CPU.
///
/// One rayon task per subdomain — the paper's one-thread-per-subdomain
/// cluster loop — all sharing a single [`BlockCutsCache`].
pub fn assemble_sc_batch(items: &[BatchItem<'_>], cfg: &ScConfig) -> BatchResult {
    assemble_sc_batch_with(items, cfg, |_| CpuExec)
}

/// Assemble every subdomain's `F̃ᵢ` in parallel on the simulated GPU,
/// round-robining subdomains over the device's streams exactly like the
/// paper's 16-stream submission loop. Each subdomain's factor + gluing
/// upload (H2D) is charged to its stream before the assembly kernels, so
/// the simulated timeline includes transfer cost. Call
/// `device.synchronize()` afterwards for the simulated device time.
pub fn assemble_sc_batch_gpu(
    items: &[BatchItem<'_>],
    cfg: &ScConfig,
    device: &std::sync::Arc<Device>,
) -> BatchResult {
    assemble_sc_batch_gpu_map(
        items,
        cfg,
        device,
        |_, item| std::borrow::Cow::Borrowed(item.l),
        |item| item.bt,
    )
}

/// GPU variant of [`assemble_sc_batch_map`]: `prepare` yields each
/// subdomain's factor (borrowed when it already exists, owned when derived
/// inside the task), subdomains are round-robined over the device's streams,
/// and the sequential `explicit_gpu` transfer pattern is reproduced per
/// subdomain (H2D factor + gluing upload before the kernels, placeholder
/// D2H sync after — the result stays resident on the device).
pub fn assemble_sc_batch_gpu_map<T, FP, FB>(
    items: &[T],
    cfg: &ScConfig,
    device: &std::sync::Arc<Device>,
    prepare: FP,
    bt_of: FB,
) -> BatchResult
where
    T: Sync,
    FP: for<'a> Fn(usize, &'a T) -> std::borrow::Cow<'a, Csc> + Sync + Send,
    FB: Fn(&T) -> &Csc + Sync + Send,
{
    let n_streams = device.n_streams();
    let kernels: Vec<GpuKernels> = (0..n_streams)
        .map(|s| GpuKernels::new(device.stream(s)))
        .collect();
    run_batch(items.len(), |i, cache| {
        let item = &items[i];
        let l = prepare(i, item);
        let bt = bt_of(item);
        let k = &kernels[i % n_streams];
        k.upload_csc(&l);
        k.upload_csc(bt);
        let mut exec = GpuExec::new(k);
        let f = assemble_sc_with_cache(&mut exec, &l, bt, cfg, Some(cache));
        k.download_bytes(0); // result stays on device; placeholder sync
        (f, l.ncols(), bt.ncols())
    })
}

/// Generic batched assembly over any [`Exec`] backend: `make_exec(i)` builds
/// the backend for subdomain `i` (e.g. binding it to a GPU stream).
pub fn assemble_sc_batch_with<E, F>(
    items: &[BatchItem<'_>],
    cfg: &ScConfig,
    make_exec: F,
) -> BatchResult
where
    E: Exec,
    F: Fn(usize) -> E + Sync + Send,
{
    run_batch(items.len(), |i, cache| {
        let item = &items[i];
        let mut exec = make_exec(i);
        let f = assemble_sc_with_cache(&mut exec, item.l, item.bt, cfg, Some(cache));
        (f, item.l.ncols(), item.bt.ncols())
    })
}

/// Batched assembly where each subdomain's factor is **derived inside its
/// own task** rather than precomputed: `prepare(i, item)` returns the owned
/// CSC factor (charging any upload cost to the backend as a side effect) and
/// `bt_of(item)` borrows the gluing block. Peak memory holds at most one
/// in-flight factor copy per worker thread instead of one per subdomain —
/// the right shape for clusters with hundreds of subdomains.
pub fn assemble_sc_batch_map<T, E, FE, FP, FB>(
    items: &[T],
    cfg: &ScConfig,
    make_exec: FE,
    prepare: FP,
    bt_of: FB,
) -> BatchResult
where
    T: Sync,
    E: Exec,
    FE: Fn(usize) -> E + Sync + Send,
    FP: Fn(usize, &T) -> Csc + Sync + Send,
    FB: Fn(&T) -> &Csc + Sync + Send,
{
    run_batch(items.len(), |i, cache| {
        let item = &items[i];
        let l = prepare(i, item);
        let bt = bt_of(item);
        let mut exec = make_exec(i);
        let f = assemble_sc_with_cache(&mut exec, &l, bt, cfg, Some(cache));
        (f, l.ncols(), bt.ncols())
    })
}

/// Shared fan-out/timing/report skeleton of the batch drivers: `run(i,
/// cache)` assembles subdomain `i` and returns `(F̃ᵢ, n_dofs, n_lambda)`.
fn run_batch<R>(count: usize, run: R) -> BatchResult
where
    R: Fn(usize, &BlockCutsCache) -> (Mat, usize, usize) + Sync + Send,
{
    let cache = BlockCutsCache::new();
    let t0 = Instant::now();
    let assembled: Vec<(Mat, SubdomainTiming)> = (0..count)
        .into_par_iter()
        .map(|i| {
            let t = Instant::now();
            let (f, n_dofs, n_lambda) = run(i, &cache);
            let timing = SubdomainTiming {
                index: i,
                n_dofs,
                n_lambda,
                seconds: t.elapsed().as_secs_f64(),
            };
            (f, timing)
        })
        .collect();
    let total_seconds = t0.elapsed().as_secs_f64();

    let mut f = Vec::with_capacity(assembled.len());
    let mut timings = Vec::with_capacity(assembled.len());
    for (mat, timing) in assembled {
        f.push(mat);
        timings.push(timing);
    }
    BatchResult {
        f,
        report: BatchReport {
            timings,
            total_seconds,
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::assemble_sc;
    use crate::trsm::FactorStorage;
    use sc_factor::{CholOptions, SparseCholesky};
    use sc_gpu::DeviceSpec;
    use sc_sparse::Coo;

    /// A small family of SPD matrices + gluing blocks mimicking a cluster of
    /// equal-size subdomains with slightly different couplings.
    fn cluster(nsub: usize, nx: usize, m: usize) -> Vec<(Csc, Csc)> {
        (0..nsub)
            .map(|s| {
                let n = nx * nx;
                let idx = |x: usize, y: usize| y * nx + x;
                let mut c = Coo::new(n, n);
                for y in 0..nx {
                    for x in 0..nx {
                        let v = idx(x, y);
                        c.push(v, v, 4.05 + 0.01 * s as f64);
                        if x > 0 {
                            c.push(v, idx(x - 1, y), -1.0);
                        }
                        if x + 1 < nx {
                            c.push(v, idx(x + 1, y), -1.0);
                        }
                        if y > 0 {
                            c.push(v, idx(x, y - 1), -1.0);
                        }
                        if y + 1 < nx {
                            c.push(v, idx(x, y + 1), -1.0);
                        }
                    }
                }
                let k = c.to_csc();
                let mut b = Coo::new(n, m);
                for j in 0..m {
                    let d = (j * 7919 + s * 131) % n;
                    b.push(d, j, if (j + s) % 2 == 0 { 1.0 } else { -1.0 });
                }
                (k, b.to_csc())
            })
            .collect()
    }

    fn factorized(cluster: &[(Csc, Csc)]) -> Vec<(Csc, Csc)> {
        cluster
            .iter()
            .map(|(k, bt)| {
                let chol = SparseCholesky::factorize(k, CholOptions::default()).unwrap();
                (chol.factor_csc(), bt.permute_rows(chol.perm()))
            })
            .collect()
    }

    #[test]
    fn batch_matches_sequential_bitwise() {
        let data = factorized(&cluster(9, 7, 12));
        let items: Vec<BatchItem<'_>> =
            data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        for cfg in [
            ScConfig::optimized(false, false),
            ScConfig::optimized(false, true),
            ScConfig::original(FactorStorage::Sparse),
        ] {
            let batch = assemble_sc_batch(&items, &cfg);
            assert_eq!(batch.f.len(), items.len());
            for (i, (l, bt)) in data.iter().enumerate() {
                let seq = assemble_sc(&mut CpuExec, l, bt, &cfg);
                assert_eq!(
                    batch.f[i], seq,
                    "batched F̃ must equal sequential F̃ bitwise (subdomain {i})"
                );
            }
        }
    }

    #[test]
    fn cache_is_shared_across_equal_subdomains() {
        let data = factorized(&cluster(8, 6, 10));
        let items: Vec<BatchItem<'_>> =
            data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let cfg = ScConfig::optimized(false, false);
        let batch = assemble_sc_batch(&items, &cfg);
        let r = &batch.report;
        // Equal-size subdomains: after the first resolution per (param, n)
        // the rest must hit. With 8 subdomains there are far more lookups
        // than distinct keys.
        assert!(
            r.cache_hits > r.cache_misses,
            "expected mostly hits, got {} hits / {} misses",
            r.cache_hits,
            r.cache_misses
        );
        assert_eq!(r.timings.len(), 8);
        assert!(r.timings.iter().all(|t| t.seconds >= 0.0));
        assert!(r.total_seconds > 0.0);
        assert!(r.cpu_seconds() > 0.0);
    }

    #[test]
    fn gpu_batch_matches_cpu_batch_and_advances_timeline() {
        let data = factorized(&cluster(8, 6, 10));
        let items: Vec<BatchItem<'_>> =
            data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let cfg = ScConfig::optimized(true, false);
        let cpu = assemble_sc_batch(&items, &cfg);
        let dev = Device::new(DeviceSpec::a100(), 4);
        let gpu = assemble_sc_batch_gpu(&items, &cfg, &dev);
        for i in 0..items.len() {
            assert_eq!(cpu.f[i], gpu.f[i], "backend mismatch at subdomain {i}");
        }
        assert!(dev.synchronize() > 0.0, "device timeline must advance");
    }

    #[test]
    fn empty_batch_is_fine() {
        let batch = assemble_sc_batch(&[], &ScConfig::optimized(false, false));
        assert!(batch.f.is_empty());
        assert_eq!(batch.report.cache_hits + batch.report.cache_misses, 0);
    }
}
