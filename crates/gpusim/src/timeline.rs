//! Event-driven device timeline: streams, bounded kernel concurrency, spans.

use crate::cost::KernelCost;
use crate::device::DeviceSpec;
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Simulated execution interval of one kernel, in seconds since device
/// creation (or the last [`Device::reset`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimSpan {
    /// Simulated start time.
    pub start: f64,
    /// Simulated end time.
    pub end: f64,
}

impl SimSpan {
    /// Kernel duration.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Totally ordered f64 wrapper for the slot heap.
#[derive(PartialEq, PartialOrd)]
struct F(f64);
impl Eq for F {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for F {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("NaN in timeline")
    }
}

struct TimelineState {
    /// Per-stream completion clock.
    stream_clock: Vec<f64>,
    /// Free times of the `concurrency` execution slots (min-heap).
    slots: BinaryHeap<Reverse<F>>,
    /// Total busy kernel-seconds (utilization accounting).
    busy: f64,
    /// Number of kernels launched.
    launches: usize,
    /// Per-kernel `(stream, span)` log, recorded when enabled (scheduler
    /// invariant tests reconstruct concurrency from it).
    span_log: Option<Vec<(usize, SimSpan)>>,
}

/// A simulated GPU: capability spec + execution timeline + memory pools.
pub struct Device {
    spec: DeviceSpec,
    state: Mutex<TimelineState>,
    temp_pool: Arc<crate::memory::TempPool>,
}

impl Device {
    /// Create a device with `n_streams` streams. The temporary-arena pool is
    /// sized at 1/2 of device memory (the rest is "persistent", §3.1).
    pub fn new(spec: DeviceSpec, n_streams: usize) -> Arc<Self> {
        let temp_pool = crate::memory::TempPool::new(spec.memory_bytes / 2);
        let concurrency = spec.concurrency.max(1);
        Arc::new(Device {
            spec,
            state: Mutex::new(TimelineState {
                stream_clock: vec![0.0; n_streams],
                slots: (0..concurrency).map(|_| Reverse(F(0.0))).collect(),
                busy: 0.0,
                launches: 0,
                span_log: None,
            }),
            temp_pool,
        })
    }

    /// Capability spec.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The device's temporary-arena pool.
    pub fn temp_pool(&self) -> &Arc<crate::memory::TempPool> {
        &self.temp_pool
    }

    /// Temporary-arena capacity in bytes — the admissibility bound planners
    /// check before placing a subdomain's temporaries on this device
    /// (shorthand for `temp_pool().capacity()`).
    pub fn arena_capacity(&self) -> usize {
        self.temp_pool.capacity()
    }

    /// Handle to stream `i`.
    pub fn stream(self: &Arc<Self>, i: usize) -> Stream {
        Stream {
            device: Arc::clone(self),
            id: i,
        }
    }

    /// Number of streams.
    pub fn n_streams(&self) -> usize {
        self.state.lock().stream_clock.len()
    }

    /// Submit a kernel on stream `id`, not starting before `ready_at`
    /// (simulated seconds). Returns its simulated span.
    ///
    /// # Panics
    ///
    /// When `cost` carries NaN, infinite, or negative work (see
    /// [`KernelCost::validate`]) — malformed costs fail here with an error
    /// naming the kernel, instead of corrupting the slot heap's ordering.
    pub fn submit(&self, id: usize, cost: &KernelCost, ready_at: f64) -> SimSpan {
        if let Err(e) = cost.validate() {
            // documented contract (see `# Panics`). sc-analyze: allow(panic-surface)
            panic!("rejected submission on stream {id}: {e}");
        }
        assert!(
            ready_at.is_finite() && ready_at >= 0.0,
            "kernel '{}' submitted with invalid ready_at {ready_at}",
            cost.label
        );
        let dur = self.spec.kernel_seconds(cost);
        let mut st = self.state.lock();
        let t0 = st.stream_clock[id].max(ready_at);
        let Reverse(F(slot_free)) = st.slots.pop().expect("no slots");
        let start = t0.max(slot_free);
        let end = start + dur;
        st.slots.push(Reverse(F(end)));
        st.stream_clock[id] = end;
        st.busy += dur;
        st.launches += 1;
        let span = SimSpan { start, end };
        if let Some(log) = st.span_log.as_mut() {
            log.push((id, span));
        }
        span
    }

    /// Start recording every submitted kernel's `(stream, span)` (cleared
    /// and re-armed by [`Device::reset`]). Used by tests that check the
    /// concurrency invariant of the timeline.
    pub fn enable_span_log(&self) {
        let mut st = self.state.lock();
        if st.span_log.is_none() {
            st.span_log = Some(Vec::new());
        }
    }

    /// Drain the recorded kernel spans (empty when logging is disabled).
    pub fn take_span_log(&self) -> Vec<(usize, SimSpan)> {
        self.state
            .lock()
            .span_log
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Whether span logging is currently armed (see
    /// [`Device::enable_span_log`]).
    pub fn span_log_enabled(&self) -> bool {
        self.state.lock().span_log.is_some()
    }

    /// Number of entries currently in the span log (0 when disabled). Pair
    /// with [`Device::span_log_since`] for a non-destructive window snapshot
    /// that leaves the log intact for a later [`Device::take_span_log`].
    pub fn span_log_len(&self) -> usize {
        self.state
            .lock()
            .span_log
            .as_ref()
            .map_or(0, |log| log.len())
    }

    /// Clone the span-log entries recorded at or after position `mark`
    /// (empty when logging is disabled). Unlike [`Device::take_span_log`]
    /// this does **not** drain the log — callers that only observe a window
    /// (e.g. the scheduled replay attaching its trace) leave earlier
    /// enablers' data untouched.
    pub fn span_log_since(&self, mark: usize) -> Vec<(usize, SimSpan)> {
        self.state
            .lock()
            .span_log
            .as_ref()
            .map_or_else(Vec::new, |log| log.get(mark..).unwrap_or(&[]).to_vec())
    }

    /// Stop recording and discard the log (the inverse of
    /// [`Device::enable_span_log`]). A later enable starts empty again.
    pub fn disable_span_log(&self) {
        self.state.lock().span_log = None;
    }

    /// Current simulated clock of stream `id` (completion of its last
    /// kernel) — the analog of a stream-synchronize + timer read.
    pub fn stream_time(&self, id: usize) -> f64 {
        self.state.lock().stream_clock[id]
    }

    /// Device-wide synchronize: simulated completion time of all streams.
    pub fn synchronize(&self) -> f64 {
        let st = self.state.lock();
        st.stream_clock.iter().copied().fold(0.0, f64::max)
    }

    /// Total busy kernel-seconds since the last reset.
    pub fn busy_seconds(&self) -> f64 {
        self.state.lock().busy
    }

    /// Kernels launched since the last reset.
    pub fn launches(&self) -> usize {
        self.state.lock().launches
    }

    /// Advance stream `id`'s clock to at least `t` (models a host-side
    /// dependency: kernels enqueued afterwards cannot start earlier — e.g.
    /// "this subdomain's factorization finished at `t`" in the overlapped
    /// `mix` configuration of the paper's §4.4).
    pub fn advance_stream(&self, id: usize, t: f64) {
        let mut st = self.state.lock();
        if st.stream_clock[id] < t {
            st.stream_clock[id] = t;
        }
    }

    /// Reset the timeline (new experiment), keeping the spec and pools.
    pub fn reset(&self) {
        let mut st = self.state.lock();
        let n = st.stream_clock.len();
        st.stream_clock = vec![0.0; n];
        st.slots = (0..self.spec.concurrency.max(1))
            .map(|_| Reverse(F(0.0)))
            .collect();
        st.busy = 0.0;
        st.launches = 0;
        if let Some(log) = st.span_log.as_mut() {
            log.clear();
        }
    }
}

/// Handle to one simulated CUDA stream.
#[derive(Clone)]
pub struct Stream {
    device: Arc<Device>,
    id: usize,
}

impl Stream {
    /// Owning device.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// Stream index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Submit a kernel on this stream (ready immediately).
    pub fn submit(&self, cost: &KernelCost) -> SimSpan {
        self.device.submit(self.id, cost, 0.0)
    }

    /// Submit a kernel that cannot start before `ready_at` (models host-side
    /// dependencies, e.g. "factorization of this subdomain finished at t").
    pub fn submit_after(&self, cost: &KernelCost, ready_at: f64) -> SimSpan {
        self.device.submit(self.id, cost, ready_at)
    }

    /// Simulated completion time of this stream's last kernel.
    pub fn time(&self) -> f64 {
        self.device.stream_time(self.id)
    }

    /// Advance this stream's clock to at least `t` (host dependency).
    pub fn advance_to(&self, t: f64) {
        self.device.advance_stream(self.id, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Arc<Device> {
        Device::new(DeviceSpec::tiny_test_device(), 4)
    }

    #[test]
    fn kernels_serialize_within_a_stream() {
        let d = dev();
        let s = d.stream(0);
        let c = KernelCost::compute(1e6, 8e3);
        let a = s.submit(&c);
        let b = s.submit(&c);
        assert!(b.start >= a.end, "in-stream ordering violated");
    }

    #[test]
    fn streams_overlap_up_to_concurrency() {
        let d = dev(); // concurrency = 2
        let c = KernelCost::compute(1e7, 8e3);
        let s0 = d.stream(0).submit(&c);
        let s1 = d.stream(1).submit(&c);
        let s2 = d.stream(2).submit(&c);
        // first two run concurrently, third must wait for a slot
        assert_eq!(s0.start, 0.0);
        assert_eq!(s1.start, 0.0);
        assert!(s2.start >= s0.end.min(s1.end) - 1e-15);
    }

    #[test]
    fn ready_at_delays_start() {
        let d = dev();
        let c = KernelCost::compute(1e6, 8e3);
        let span = d.stream(3).submit_after(&c, 1.5);
        assert!(span.start >= 1.5);
    }

    #[test]
    fn synchronize_is_max_over_streams() {
        let d = dev();
        let c = KernelCost::compute(1e6, 8e3);
        d.stream(0).submit(&c);
        d.stream(1).submit(&c);
        d.stream(1).submit(&c);
        assert!((d.synchronize() - d.stream_time(1)).abs() < 1e-18);
    }

    #[test]
    fn reset_clears_clocks() {
        let d = dev();
        d.stream(0).submit(&KernelCost::compute(1e6, 8e3));
        d.reset();
        assert_eq!(d.synchronize(), 0.0);
        assert_eq!(d.launches(), 0);
    }

    #[test]
    fn nan_cost_is_rejected_with_kernel_name() {
        let d = dev();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.stream(0).submit(&KernelCost::compute(f64::NAN, 8e3));
        }))
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(
            msg.contains("compute") && msg.contains("flops"),
            "error must name the kernel and the bad field: {msg}"
        );
    }

    #[test]
    fn negative_bytes_are_rejected() {
        let d = dev();
        let mut cost = KernelCost::gather(4);
        cost.bytes = -1.0;
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.stream(1).submit(&cost);
        }))
        .is_err());
    }

    #[test]
    fn span_log_records_and_resets() {
        let d = dev();
        d.enable_span_log();
        let c = KernelCost::compute(1e6, 8e3);
        d.stream(0).submit(&c);
        d.stream(1).submit(&c);
        let log = d.take_span_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].0, 0);
        assert_eq!(log[1].0, 1);
        assert!(d.take_span_log().is_empty(), "take drains the log");
        d.stream(2).submit(&c);
        d.reset();
        assert!(d.take_span_log().is_empty(), "reset clears the log");
    }

    #[test]
    fn span_log_snapshot_does_not_drain() {
        let d = dev();
        assert!(!d.span_log_enabled());
        assert_eq!(d.span_log_len(), 0);
        assert!(d.span_log_since(0).is_empty());
        d.enable_span_log();
        let c = KernelCost::compute(1e6, 8e3);
        d.stream(0).submit(&c);
        let mark = d.span_log_len();
        assert_eq!(mark, 1);
        d.stream(1).submit(&c);
        d.stream(2).submit(&c);
        let window = d.span_log_since(mark);
        assert_eq!(window.len(), 2, "window sees only post-mark kernels");
        assert_eq!(window[0].0, 1);
        assert_eq!(window[1].0, 2);
        // the snapshot left the full log intact for the draining reader
        assert_eq!(d.take_span_log().len(), 3);
        d.disable_span_log();
        assert!(!d.span_log_enabled());
        d.stream(0).submit(&c);
        assert_eq!(d.span_log_len(), 0, "disabled log records nothing");
    }

    #[test]
    fn busy_accounts_all_kernels() {
        let d = dev();
        let c = KernelCost::compute(1e6, 8e3);
        let t = d.spec().kernel_seconds(&c);
        d.stream(0).submit(&c);
        d.stream(1).submit(&c);
        assert!((d.busy_seconds() - 2.0 * t).abs() < 1e-12);
    }
}
