//! Recorded execution traces of the scheduled drivers, for static hazard
//! analysis.
//!
//! The §4.4 record-then-replay drivers already know, for every replayed
//! kernel, which subdomain's temporary-arena allocation it touches, on which
//! stream it ran, and over which simulated interval. A [`Trace`] captures
//! exactly that — alloc/free events of every arena reservation plus every
//! kernel's stream, span, and slot read/write sets — so a *static* checker
//! (`sc_analyze::trace::validate`) can audit the executed schedule for
//! use-after-free, double-free, cross-stream data hazards, per-stream
//! serialization, and arena oversubscription the way `compute-sanitizer` or
//! TSan would on real hardware.
//!
//! Traces are attached to batch reports by the scheduled drivers
//! (`BatchReport::trace` in `sc_core`), one per device replay; slot ids are
//! replay-local subdomain positions.

use crate::timeline::SimSpan;

/// How one recorded kernel touches its subdomain's temporary-arena slot.
///
/// Recorded host-side by `RecordingExec` (which cannot know the concrete
/// slot id yet — slots are assigned at replay admission), then bound to the
/// admitted slot when the kernel replays onto the device timeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlotAccess {
    /// The kernel reads bytes of the slot (D2H downloads, compute inputs).
    pub reads: bool,
    /// The kernel writes bytes of the slot (H2D uploads, compute outputs).
    pub writes: bool,
}

impl SlotAccess {
    /// Read-only access (D2H downloads).
    pub fn read() -> Self {
        SlotAccess {
            reads: true,
            writes: false,
        }
    }

    /// Write-only access (H2D uploads into the slot).
    pub fn write() -> Self {
        SlotAccess {
            reads: false,
            writes: true,
        }
    }

    /// Read-write access (compute kernels: inputs and outputs both live in
    /// the subdomain's temporary slot).
    pub fn read_write() -> Self {
        SlotAccess {
            reads: true,
            writes: true,
        }
    }
}

/// One event of a recorded schedule, in replay emission order.
#[derive(Clone, Debug)]
pub enum TraceEvent {
    /// A temporary-arena reservation opened for slot `slot` at simulated
    /// time `at` (the subdomain's admission instant).
    Alloc {
        /// Replay-local slot id (the subdomain's position in the replayed
        /// slice).
        slot: usize,
        /// Reserved bytes.
        bytes: usize,
        /// Simulated admission time.
        at: f64,
    },
    /// The reservation of slot `slot` released at simulated time `at` (the
    /// end of the subdomain's last kernel).
    Free {
        /// Replay-local slot id.
        slot: usize,
        /// Simulated release time.
        at: f64,
    },
    /// One replayed kernel launch.
    Kernel {
        /// Kernel family (from [`KernelCost::label`](crate::KernelCost)).
        label: &'static str,
        /// Stream the kernel ran on (device-local).
        stream: usize,
        /// Simulated execution interval.
        span: SimSpan,
        /// Arena slots the kernel reads.
        reads: Vec<usize>,
        /// Arena slots the kernel writes.
        writes: Vec<usize>,
    },
    /// One simulated inter-node transfer over the cluster interconnect
    /// (recorded by the multi-node drivers). A kernel that **reads** a slot
    /// this exchange **writes** depends on the delivered bytes and must not
    /// start before the exchange's span ends — the hazard
    /// `sc_analyze::trace::validate` flags as an exchange overlap.
    Exchange {
        /// Transfer family (e.g. `"lambda-exchange"`).
        label: &'static str,
        /// Peer node the bytes move to/from.
        peer: usize,
        /// Bytes on the wire.
        bytes: usize,
        /// Simulated transfer interval on the node timeline.
        span: SimSpan,
        /// Arena slots whose contents the exchange delivers (dependents
        /// must wait; empty for pure egress transfers).
        writes: Vec<usize>,
    },
}

/// A complete recorded schedule of one device replay: the event stream plus
/// the device's own span log over the replay window, against the arena and
/// stream geometry the schedule ran under.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Temporary-arena capacity the schedule was admitted against, bytes.
    pub arena_capacity: usize,
    /// Bytes of one matrix element in the replayed schedule (8 for `f64`,
    /// 4 for `f32`). Arena reservations in [`Trace::events`] are sized with
    /// this width, so the oversubscription audit compares like against like
    /// instead of assuming 8-byte slots.
    pub elem_bytes: usize,
    /// Number of streams of the device.
    pub n_streams: usize,
    /// Bounded kernel concurrency of the device (across streams).
    pub concurrency: usize,
    /// Alloc/free/kernel events, in replay emission order.
    pub events: Vec<TraceEvent>,
    /// The device's `(stream, span)` log over the replay window — an
    /// independent witness of per-stream serialization, captured through the
    /// timeline's span-log machinery rather than reconstructed from
    /// [`Trace::events`].
    pub span_log: Vec<(usize, SimSpan)>,
}

impl Default for Trace {
    /// Empty trace with the historical 8-byte (`f64`) element width.
    fn default() -> Self {
        Trace {
            arena_capacity: 0,
            elem_bytes: 8,
            n_streams: 0,
            concurrency: 0,
            events: Vec::new(),
            span_log: Vec::new(),
        }
    }
}

impl Trace {
    /// Number of kernel events in the trace.
    pub fn n_kernels(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Kernel { .. }))
            .count()
    }

    /// Number of arena reservations (alloc events) in the trace.
    pub fn n_allocs(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Alloc { .. }))
            .count()
    }

    /// Number of inter-node exchange events in the trace.
    pub fn n_exchanges(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Exchange { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_constructors_cover_the_three_shapes() {
        assert_eq!(
            SlotAccess::read(),
            SlotAccess {
                reads: true,
                writes: false
            }
        );
        assert_eq!(
            SlotAccess::write(),
            SlotAccess {
                reads: false,
                writes: true
            }
        );
        assert!(SlotAccess::read_write().reads && SlotAccess::read_write().writes);
    }

    #[test]
    fn counters_count_event_kinds() {
        let t = Trace {
            arena_capacity: 100,
            elem_bytes: 8,
            n_streams: 2,
            concurrency: 2,
            events: vec![
                TraceEvent::Alloc {
                    slot: 0,
                    bytes: 10,
                    at: 0.0,
                },
                TraceEvent::Kernel {
                    label: "syrk",
                    stream: 0,
                    span: SimSpan {
                        start: 0.0,
                        end: 1.0,
                    },
                    reads: vec![0],
                    writes: vec![0],
                },
                TraceEvent::Free { slot: 0, at: 1.0 },
            ],
            span_log: vec![(
                0,
                SimSpan {
                    start: 0.0,
                    end: 1.0,
                },
            )],
        };
        assert_eq!(t.n_kernels(), 1);
        assert_eq!(t.n_allocs(), 1);
    }
}
