//! Multi-node topology: nodes (a device pool each) joined by an
//! interconnect whose latency/bandwidth price inter-node exchanges.
//!
//! The paper's production setting runs many 8-GPU nodes; past one node the
//! dominant cost is no longer kernel speed but the boundary traffic between
//! ranks (lambda segments, gluing rows). [`Interconnect`] is the two-number
//! cost model of one such link, [`NodeSpec`] pairs a node's [`DevicePool`]
//! with the link that feeds it, and [`NodePool`] is the cluster: the
//! execution target of the multi-node backend in `sc_core`.

use crate::device::DeviceSpec;
use crate::pool::DevicePool;
use std::sync::Arc;

/// Latency/bandwidth cost model of one inter-node link (the §4.4 cost model
/// extended beyond PCIe: a message of `b` bytes costs
/// `latency_s + b / bandwidth_bytes_per_s`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interconnect {
    /// Fixed per-message latency in seconds.
    pub latency_s: f64,
    /// Sustained link bandwidth in bytes per second (must be positive).
    pub bandwidth_bytes_per_s: f64,
}

impl Interconnect {
    /// An explicit latency/bandwidth pair.
    ///
    /// # Panics
    ///
    /// When the latency is negative/non-finite or the bandwidth is not
    /// positive — a zero-bandwidth link would price every exchange at
    /// infinity and corrupt the planner's orderings.
    pub fn new(latency_s: f64, bandwidth_bytes_per_s: f64) -> Self {
        assert!(
            latency_s.is_finite() && latency_s >= 0.0,
            "interconnect latency must be a non-negative number, got {latency_s}"
        );
        assert!(
            bandwidth_bytes_per_s > 0.0,
            "interconnect bandwidth must be positive, got {bandwidth_bytes_per_s}"
        );
        Interconnect {
            latency_s,
            bandwidth_bytes_per_s,
        }
    }

    /// A 200 Gb/s-class HDR InfiniBand link (~2 µs latency, 25 GB/s) — the
    /// fabric of the Karolina cluster the paper benchmarks on.
    pub fn infiniband() -> Self {
        Interconnect::new(2.0e-6, 25.0e9)
    }

    /// An effectively free link (zero latency, 1 TB/s): the baseline for
    /// scaling studies that isolate partition quality from exchange cost.
    pub fn ideal() -> Self {
        Interconnect::new(0.0, 1.0e12)
    }

    /// Seconds to move `bytes` over this link (latency plus the bandwidth
    /// term; a zero-byte message still pays the latency).
    pub fn seconds(&self, bytes: f64) -> f64 {
        self.latency_s + bytes.max(0.0) / self.bandwidth_bytes_per_s
    }
}

/// One node of a simulated cluster: its device pool plus the interconnect
/// that feeds it (the link every off-node byte destined for this node
/// crosses).
#[derive(Clone)]
pub struct NodeSpec {
    /// The node's devices (an independent simulator per node).
    pub pool: Arc<DevicePool>,
    /// The inter-node link this node exchanges over.
    pub link: Interconnect,
}

impl NodeSpec {
    /// Pair an existing device pool with a link.
    pub fn new(pool: Arc<DevicePool>, link: Interconnect) -> Self {
        NodeSpec { pool, link }
    }

    /// A node of `n_devices` identical devices with `n_streams` streams
    /// each, behind the given link.
    pub fn uniform(
        spec: DeviceSpec,
        n_devices: usize,
        n_streams: usize,
        link: Interconnect,
    ) -> Self {
        NodeSpec {
            pool: DevicePool::uniform(spec, n_devices, n_streams),
            link,
        }
    }
}

impl std::fmt::Debug for NodeSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeSpec")
            .field("n_devices", &self.pool.n_devices())
            .field("link", &self.link)
            .finish()
    }
}

/// A simulated multi-node cluster: the execution target of
/// `Backend::multi_node` in `sc_core`. Nodes run concurrently; each node's
/// [`DevicePool`] keeps its own timelines, and the pool-level accessors
/// mirror [`DevicePool`]'s so drivers can treat the two tiers uniformly.
#[derive(Debug)]
pub struct NodePool {
    nodes: Vec<NodeSpec>,
}

impl NodePool {
    /// A cluster of `n_nodes` identical nodes (`devices_per_node` copies of
    /// `spec`, `n_streams` streams each) joined by `link`.
    pub fn uniform(
        spec: DeviceSpec,
        n_nodes: usize,
        devices_per_node: usize,
        n_streams: usize,
        link: Interconnect,
    ) -> Arc<Self> {
        Arc::new(NodePool {
            nodes: (0..n_nodes)
                .map(|_| NodeSpec::uniform(spec.clone(), devices_per_node, n_streams, link))
                .collect(),
        })
    }

    /// A cluster from explicit (possibly heterogeneous) node specs.
    pub fn from_nodes(nodes: Vec<NodeSpec>) -> Arc<Self> {
        Arc::new(NodePool { nodes })
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// True when the cluster holds no node.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node `i`.
    pub fn node(&self, i: usize) -> &NodeSpec {
        &self.nodes[i]
    }

    /// All nodes, in cluster order.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// Total device count across all nodes.
    pub fn n_devices(&self) -> usize {
        self.nodes.iter().map(|n| n.pool.n_devices()).sum()
    }

    /// Total stream count across all nodes (the cluster's parallel width).
    pub fn total_streams(&self) -> usize {
        self.nodes.iter().map(|n| n.pool.total_streams()).sum()
    }

    /// Largest simulated completion time across every node's devices.
    pub fn synchronize_all(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.pool.synchronize_all())
            .fold(0.0, f64::max)
    }

    /// Reset every node's device timelines (new experiment).
    pub fn reset_all(&self) {
        for n in &self.nodes {
            n.pool.reset_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_prices_latency_plus_bandwidth() {
        let l = Interconnect::new(1.0e-6, 1.0e9);
        assert_eq!(l.seconds(0.0), 1.0e-6);
        let t = l.seconds(1.0e9);
        assert!((t - (1.0 + 1.0e-6)).abs() < 1e-12);
        // the ideal link is effectively free but still well-formed
        assert!(Interconnect::ideal().seconds(1e6) < 1e-5);
    }

    #[test]
    fn zero_bandwidth_is_rejected() {
        assert!(std::panic::catch_unwind(|| Interconnect::new(0.0, 0.0)).is_err());
        assert!(std::panic::catch_unwind(|| Interconnect::new(f64::NAN, 1.0)).is_err());
    }

    #[test]
    fn node_pool_counts_devices_and_streams() {
        let pool = NodePool::uniform(
            DeviceSpec::tiny_test_device(),
            3,
            2,
            4,
            Interconnect::ideal(),
        );
        assert_eq!(pool.n_nodes(), 3);
        assert_eq!(pool.n_devices(), 6);
        assert_eq!(pool.total_streams(), 24);
        assert!(!pool.is_empty());
        assert_eq!(pool.node(1).pool.n_devices(), 2);
    }

    #[test]
    fn node_timelines_are_independent_and_resettable() {
        let pool = NodePool::uniform(
            DeviceSpec::tiny_test_device(),
            2,
            1,
            1,
            Interconnect::ideal(),
        );
        let c = crate::cost::KernelCost::compute(1e6, 8e3);
        pool.node(0).pool.device(0).stream(0).submit(&c);
        assert!(pool.node(0).pool.synchronize_all() > 0.0);
        assert_eq!(pool.node(1).pool.synchronize_all(), 0.0);
        assert!(pool.synchronize_all() > 0.0);
        pool.reset_all();
        assert_eq!(pool.synchronize_all(), 0.0);
    }
}
