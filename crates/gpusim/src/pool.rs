//! A pool of independent simulated devices — the node-level analog of the
//! paper's production setting (8 GPUs per Karolina node).
//!
//! Each member [`Device`] owns its own streams, timeline, and temporary-arena
//! [`TempPool`](crate::TempPool); the pool itself adds no shared state beyond
//! the roster, mirroring real multi-GPU nodes where cards only interact
//! through the host. Heterogeneous mixes (e.g. an A100 next to a tiny test
//! card) are allowed — the cluster planner in `sc_core::schedule` uses each
//! device's own spec and arena capacity when partitioning work.

use crate::device::DeviceSpec;
use crate::timeline::Device;
use std::sync::Arc;

/// An ordered roster of independent simulated devices.
pub struct DevicePool {
    devices: Vec<Arc<Device>>,
}

impl DevicePool {
    /// `n_devices` identical devices, `n_streams` streams each.
    pub fn uniform(spec: DeviceSpec, n_devices: usize, n_streams: usize) -> Arc<Self> {
        Arc::new(DevicePool {
            devices: (0..n_devices)
                .map(|_| Device::new(spec.clone(), n_streams))
                .collect(),
        })
    }

    /// One device per spec (heterogeneous mixes), `n_streams` streams each.
    pub fn heterogeneous(specs: &[DeviceSpec], n_streams: usize) -> Arc<Self> {
        Arc::new(DevicePool {
            devices: specs
                .iter()
                .map(|s| Device::new(s.clone(), n_streams))
                .collect(),
        })
    }

    /// Adopt existing devices (e.g. per-device stream counts).
    pub fn from_devices(devices: Vec<Arc<Device>>) -> Arc<Self> {
        Arc::new(DevicePool { devices })
    }

    /// Number of devices in the pool.
    pub fn n_devices(&self) -> usize {
        self.devices.len()
    }

    /// True when the pool holds no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Device `i`.
    pub fn device(&self, i: usize) -> &Arc<Device> {
        &self.devices[i]
    }

    /// All devices, in pool order.
    pub fn devices(&self) -> &[Arc<Device>] {
        &self.devices
    }

    /// Per-device temporary-arena capacities in bytes, pool order — the
    /// admissibility inputs of the cluster and hybrid planners.
    pub fn arena_capacities(&self) -> Vec<usize> {
        self.devices.iter().map(|d| d.arena_capacity()).collect()
    }

    /// Largest temporary-arena capacity among devices that can actually run
    /// work (`n_streams > 0`); 0 for an empty or fully drained pool. A
    /// subdomain whose peak temporaries exceed this can never be assembled
    /// explicitly on this pool — the hybrid planner's spill threshold.
    pub fn max_arena_capacity(&self) -> usize {
        self.devices
            .iter()
            .filter(|d| d.n_streams() > 0)
            .map(|d| d.arena_capacity())
            .max()
            .unwrap_or(0)
    }

    /// Total stream count across the pool (parallel capacity of the node).
    pub fn total_streams(&self) -> usize {
        self.devices.iter().map(|d| d.n_streams()).sum()
    }

    /// Pool-wide synchronize: the latest simulated completion time across
    /// all devices (the cluster makespan when every device started at 0).
    pub fn synchronize_all(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.synchronize())
            .fold(0.0, f64::max)
    }

    /// Total busy kernel-seconds across all devices.
    pub fn busy_seconds_all(&self) -> f64 {
        self.devices.iter().map(|d| d.busy_seconds()).sum()
    }

    /// Reset every device's timeline (new experiment).
    pub fn reset_all(&self) {
        for d in &self.devices {
            d.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::KernelCost;

    #[test]
    fn devices_are_independent() {
        let pool = DevicePool::uniform(DeviceSpec::tiny_test_device(), 3, 2);
        assert_eq!(pool.n_devices(), 3);
        let c = KernelCost::compute(1e6, 8e3);
        pool.device(0).stream(0).submit(&c);
        pool.device(0).stream(0).submit(&c);
        pool.device(1).stream(1).submit(&c);
        assert!(pool.device(0).synchronize() > pool.device(1).synchronize());
        assert_eq!(pool.device(2).synchronize(), 0.0, "untouched device");
        assert_eq!(pool.synchronize_all(), pool.device(0).synchronize());
        assert!(pool.busy_seconds_all() > 0.0);
        pool.reset_all();
        assert_eq!(pool.synchronize_all(), 0.0);
    }

    #[test]
    fn heterogeneous_pool_keeps_per_device_specs() {
        let pool =
            DevicePool::heterogeneous(&[DeviceSpec::a100(), DeviceSpec::tiny_test_device()], 4);
        assert_eq!(pool.device(0).spec().name, "sim-A100-40GB");
        assert_eq!(pool.device(1).spec().name, "sim-tiny");
        // arena capacities differ with device memory
        assert!(pool.device(0).temp_pool().capacity() > pool.device(1).temp_pool().capacity());
    }

    #[test]
    fn registry_resolves_known_names() {
        for name in DeviceSpec::registry() {
            assert!(DeviceSpec::from_name(name).is_some(), "{name} must resolve");
        }
        assert!(DeviceSpec::from_name("mi300").is_none());
        assert!(
            DeviceSpec::from_name("h100").unwrap().fp64_gflops > DeviceSpec::a100().fp64_gflops
        );
        // the host entry prices CPU-side work: far below accelerator peak
        let host = DeviceSpec::from_name("host").unwrap();
        assert!(host.fp64_gflops < DeviceSpec::a100().fp64_gflops / 10.0);
    }

    #[test]
    fn capacity_queries_report_usable_arenas() {
        let pool = DevicePool::from_devices(vec![
            Device::new(DeviceSpec::a100(), 0), // drained: unusable
            Device::new(DeviceSpec::tiny_test_device(), 2),
        ]);
        let caps = pool.arena_capacities();
        assert_eq!(caps.len(), 2);
        assert_eq!(caps[0], DeviceSpec::a100().memory_bytes / 2);
        // the drained A100's big arena must not count as usable
        assert_eq!(
            pool.max_arena_capacity(),
            DeviceSpec::tiny_test_device().memory_bytes / 2
        );
        assert_eq!(pool.total_streams(), 2);
        let empty = DevicePool::from_devices(Vec::new());
        assert_eq!(empty.max_arena_capacity(), 0);
        assert_eq!(empty.total_streams(), 0);
    }
}
