//! Event-driven GPU execution simulator — the workspace's substitute for the
//! CUDA/A100 stack of the paper (see DESIGN.md, "Substitutions").
//!
//! Every "GPU kernel" in this crate does two things:
//!
//! 1. **computes the real result on the host** (using `sc-dense`/`sc-sparse`
//!    kernels), so all downstream numerics are exact and testable; and
//! 2. **advances a simulated device timeline** according to a calibrated
//!    cost model (kernel-launch latency, FLOP throughput with an occupancy
//!    ramp, HBM and PCIe bandwidth), so reported "GPU time" reproduces the
//!    *shape* of real GPU behaviour: small kernels are launch-bound (the
//!    paper's footnote 1), large ones are compute/bandwidth-bound, and
//!    many-small-blocks configurations pay per-launch overhead (the left
//!    branch of the U-curve in the paper's Figure 5).
//!
//! The device supports multiple [`Stream`]s (the paper submits with 16 CUDA
//! streams, one per OpenMP thread) with a bounded number of concurrently
//! executing kernels, plus the paper's §3.1 memory management: a persistent
//! pool sized at initialization and a blocking temporary arena allocator.

pub mod cost;
pub mod device;
pub mod kernels;
pub mod memory;
pub mod node;
pub mod pool;
pub mod timeline;
pub mod trace;

pub use cost::KernelCost;
pub use device::DeviceSpec;
pub use kernels::GpuKernels;
pub use memory::{TempAlloc, TempPool};
pub use node::{Interconnect, NodePool, NodeSpec};
pub use pool::DevicePool;
pub use timeline::{Device, SimSpan, Stream};
pub use trace::{SlotAccess, Trace, TraceEvent};
