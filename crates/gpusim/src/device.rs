//! Device capability model.

/// Static description of a simulated accelerator.
#[derive(Clone, Debug)]
pub struct DeviceSpec {
    /// Marketing name (diagnostics only).
    pub name: &'static str,
    /// Peak FP64 throughput in GFLOP/s.
    pub fp64_gflops: f64,
    /// Device memory bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Host-device interconnect bandwidth in GB/s.
    pub pcie_bandwidth_gbps: f64,
    /// Fixed per-kernel launch latency in microseconds.
    pub kernel_launch_us: f64,
    /// Number of kernels that can execute concurrently (across streams).
    pub concurrency: usize,
    /// FLOP count at which a kernel reaches 50% of peak throughput (the
    /// occupancy ramp: tiny kernels cannot fill the device).
    pub occupancy_half_flops: f64,
    /// Device memory capacity in bytes (backs the §3.1 memory pools).
    pub memory_bytes: usize,
}

impl DeviceSpec {
    /// NVIDIA A100-SXM4-40GB, the GPU of the Karolina node used in the paper
    /// (§4). FP64 without tensor cores; HBM2 at 1.55 TB/s; PCIe gen4.
    pub fn a100() -> Self {
        DeviceSpec {
            name: "sim-A100-40GB",
            fp64_gflops: 9_700.0,
            mem_bandwidth_gbps: 1_555.0,
            pcie_bandwidth_gbps: 25.0,
            kernel_launch_us: 4.0,
            concurrency: 8,
            occupancy_half_flops: 3.0e7,
            memory_bytes: 40 * (1usize << 30),
        }
    }

    /// NVIDIA H100-SXM5-80GB — the successor card, for heterogeneous
    /// device-pool experiments: ~3.5× the FP64 throughput and ~2× the
    /// interconnect and HBM bandwidth of the A100, double the memory.
    pub fn h100() -> Self {
        DeviceSpec {
            name: "sim-H100-80GB",
            fp64_gflops: 33_500.0,
            mem_bandwidth_gbps: 3_350.0,
            pcie_bandwidth_gbps: 50.0,
            kernel_launch_us: 4.0,
            concurrency: 16,
            // a bigger device needs more in-flight work to fill
            occupancy_half_flops: 6.0e7,
            memory_bytes: 80 * (1usize << 30),
        }
    }

    /// The **host CPU** expressed in the same duration-model vocabulary as
    /// the accelerators, so the hybrid planner can price CPU-side work
    /// (explicit-CPU assembly, implicit applies) against GPU placements with
    /// one cost function. Multicore FP64 throughput of a server-class CPU,
    /// DRAM bandwidth, no interconnect penalty (transfers are memcpys), and
    /// a near-zero "launch" (function call) overhead.
    pub fn host() -> Self {
        DeviceSpec {
            name: "sim-host-cpu",
            fp64_gflops: 250.0,
            mem_bandwidth_gbps: 100.0,
            pcie_bandwidth_gbps: 100.0,
            kernel_launch_us: 0.05,
            concurrency: 32,
            // CPUs have no occupancy ramp to speak of
            occupancy_half_flops: 1.0e4,
            memory_bytes: 256 * (1usize << 30),
        }
    }

    /// Look a spec up by short name (`"a100"`, `"h100"`, `"tiny"`,
    /// `"host"`) — the registry behind CLI flags like `--devices a100,h100`.
    /// Node-level names (`"node8xa100"`: 8 cards per node) resolve to the
    /// **per-card** spec; pair with [`DeviceSpec::node_from_name`] when the
    /// card count matters.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "a100" => Some(Self::a100()),
            "h100" => Some(Self::h100()),
            "tiny" => Some(Self::tiny_test_device()),
            "host" => Some(Self::host()),
            _ => Self::node_from_name(name).map(|(spec, _)| spec),
        }
    }

    /// Parse a whole-node preset `"node<K>x<device>"` (e.g. `"node8xa100"`,
    /// the paper's 8-GPU Karolina node) into the per-card spec and the card
    /// count — what `--devices`-style CLI flags use to select a node in one
    /// token. `None` for anything else.
    pub fn node_from_name(name: &str) -> Option<(Self, usize)> {
        let rest = name.strip_prefix("node")?;
        let (count, device) = rest.split_once('x')?;
        let n: usize = count.parse().ok().filter(|&n| n > 0)?;
        match device {
            "a100" => Some((Self::a100(), n)),
            "h100" => Some((Self::h100(), n)),
            "tiny" => Some((Self::tiny_test_device(), n)),
            "host" => Some((Self::host(), n)),
            _ => None,
        }
    }

    /// Short names accepted by [`DeviceSpec::from_name`].
    pub fn registry() -> &'static [&'static str] {
        &["a100", "h100", "tiny", "host", "node8xa100", "node4xh100"]
    }

    /// A deliberately small test device: tiny memory and high launch
    /// overhead, to exercise pool-blocking and launch-bound paths in tests.
    pub fn tiny_test_device() -> Self {
        DeviceSpec {
            name: "sim-tiny",
            fp64_gflops: 10.0,
            mem_bandwidth_gbps: 10.0,
            pcie_bandwidth_gbps: 1.0,
            kernel_launch_us: 100.0,
            concurrency: 2,
            occupancy_half_flops: 1.0e6,
            memory_bytes: 1 << 20,
        }
    }

    /// Simulated wall-clock duration of a kernel, in seconds.
    pub fn kernel_seconds(&self, cost: &crate::cost::KernelCost) -> f64 {
        let launch = self.kernel_launch_us * 1e-6;
        // occupancy ramp: effective throughput grows with the kernel size
        let util = cost.flops / (cost.flops + self.occupancy_half_flops);
        let compute = if cost.flops > 0.0 {
            cost.flops / (self.fp64_gflops * 1e9 * util.max(1e-12))
        } else {
            0.0
        };
        let mem_bw = if cost.over_pcie {
            self.pcie_bandwidth_gbps
        } else {
            self.mem_bandwidth_gbps
        };
        let memory = cost.bytes / (mem_bw * 1e9);
        let total = launch + compute.max(memory);
        debug_assert!(
            total.is_finite() && total >= 0.0,
            "kernel '{}' produced a non-finite or negative duration {total} \
             (flops={}, bytes={})",
            cost.label,
            cost.flops,
            cost.bytes
        );
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::KernelCost;

    #[test]
    fn node_names_resolve_to_per_card_specs() {
        let (spec, n) = DeviceSpec::node_from_name("node8xa100").expect("known node preset");
        assert_eq!(n, 8);
        assert_eq!(spec.name, DeviceSpec::a100().name);
        // from_name resolves node names too (registry contract), to the card
        assert_eq!(
            DeviceSpec::from_name("node4xh100").map(|s| s.name),
            Some(DeviceSpec::h100().name)
        );
        assert!(DeviceSpec::node_from_name("node0xa100").is_none());
        assert!(DeviceSpec::node_from_name("nodeXxa100").is_none());
        assert!(DeviceSpec::node_from_name("node8xvolta").is_none());
        assert!(DeviceSpec::node_from_name("a100").is_none());
    }

    #[test]
    fn tiny_kernels_are_launch_bound() {
        let spec = DeviceSpec::a100();
        let t = spec.kernel_seconds(&KernelCost::compute(1_000.0, 8_000.0));
        // launch is 4us; compute of 1k flops is negligible even derated
        assert!(t < 10e-6, "expected launch-bound, got {t}");
        assert!(t >= 4e-6);
    }

    #[test]
    fn large_kernels_approach_peak() {
        let spec = DeviceSpec::a100();
        let flops = 1e12;
        let t = spec.kernel_seconds(&KernelCost::compute(flops, 8.0 * 1e9));
        let ideal = flops / (spec.fp64_gflops * 1e9);
        assert!(t < 1.2 * ideal, "t={t}, ideal={ideal}");
    }

    #[test]
    fn transfers_use_pcie() {
        let spec = DeviceSpec::a100();
        let bytes = 1e9;
        let t = spec.kernel_seconds(&KernelCost::transfer(bytes));
        assert!(t > bytes / (spec.pcie_bandwidth_gbps * 1e9) * 0.99);
    }

    #[test]
    fn bandwidth_bound_kernels_charged_by_bytes() {
        let spec = DeviceSpec::a100();
        // 1 flop per 1000 bytes: memory dominates
        let c = KernelCost::compute(1e6, 1e9);
        let t = spec.kernel_seconds(&c);
        assert!(t > 1e9 / (spec.mem_bandwidth_gbps * 1e9) * 0.99);
    }
}
