//! The simulated cuBLAS / cuSPARSE kernel set.
//!
//! Each method computes the true result on the host (via `sc-dense` /
//! `sc-sparse`) and advances the owning stream's simulated timeline with the
//! matching [`KernelCost`]. The API mirrors the kernels the paper's assembler
//! calls: dense/sparse TRSM, SYRK, GEMM, sparse-dense GEMM, gathers for the
//! pruning compaction, GEMV for the explicit dual operator, and H2D/D2H
//! transfers.

use crate::cost::KernelCost;
use crate::timeline::{SimSpan, Stream};
use parking_lot::Mutex;
use sc_dense::{MatMutOf, MatRefOf, Scalar, Trans};
use sc_sparse::CscOf;

/// Kernel-set facade bound to one stream.
///
/// Every submission is also folded into a per-instance *captured span* (the
/// union `[earliest start, latest end]` of everything this instance
/// launched). A caller that creates one `GpuKernels` per subdomain — as the
/// batched drivers do — gets the subdomain's simulated execution span for
/// free from [`GpuKernels::captured_span`].
pub struct GpuKernels {
    stream: Stream,
    cost_only: bool,
    captured: Mutex<Option<SimSpan>>,
}

impl GpuKernels {
    /// Bind the kernel set to a stream.
    pub fn new(stream: Stream) -> Self {
        GpuKernels {
            stream,
            cost_only: false,
            captured: Mutex::new(None),
        }
    }

    /// Cost-only mode: kernels advance the simulated timeline but skip the
    /// host-side numeric execution. The timeline is bit-identical to the
    /// computing mode (costs depend only on shapes/nnz, never on values), so
    /// large parameter sweeps can use this to keep bench wall-time bounded.
    /// Numeric correctness of every code path is covered by tests running in
    /// computing mode.
    pub fn new_cost_only(stream: Stream) -> Self {
        GpuKernels {
            stream,
            cost_only: true,
            captured: Mutex::new(None),
        }
    }

    /// True when this kernel set skips host-side computation.
    pub fn is_cost_only(&self) -> bool {
        self.cost_only
    }

    /// The underlying stream.
    pub fn stream(&self) -> &Stream {
        &self.stream
    }

    /// Submit on the bound stream and fold the span into the captured union.
    fn submit(&self, cost: &KernelCost) -> SimSpan {
        let span = self.stream.submit(cost);
        let mut captured = self.captured.lock();
        *captured = Some(match *captured {
            None => span,
            Some(acc) => SimSpan {
                start: acc.start.min(span.start),
                end: acc.end.max(span.end),
            },
        });
        span
    }

    /// Union span of every kernel submitted through this instance since
    /// creation (or the last [`GpuKernels::reset_captured_span`]); `None`
    /// when nothing was submitted. On the device this is the subdomain's
    /// simulated residence interval on its stream.
    pub fn captured_span(&self) -> Option<SimSpan> {
        *self.captured.lock()
    }

    /// Clear the captured span (start a new measurement window).
    pub fn reset_captured_span(&self) {
        *self.captured.lock() = None;
    }

    /// Simulated H2D upload of `bytes`.
    pub fn upload_bytes(&self, bytes: usize) -> SimSpan {
        self.submit(&KernelCost::transfer(bytes as f64))
    }

    /// Simulated D2H download of `bytes`.
    pub fn download_bytes(&self, bytes: usize) -> SimSpan {
        self.submit(&KernelCost::transfer(bytes as f64))
    }

    /// Simulated H2D upload of a CSC matrix (8-byte index + one value of
    /// the working precision per stored entry, see
    /// [`KernelCost::csc_transfer_of`] — the single home of the
    /// sparse-transfer cost model). Used by every explicit-GPU
    /// preprocessing path.
    pub fn upload_csc<S: Scalar>(&self, m: &CscOf<S>) -> SimSpan {
        self.submit(&KernelCost::csc_transfer_of::<S>(m.nnz()))
    }

    /// Dense TRSM: solve `L X = B` in place (`L` lower triangular).
    pub fn trsm_dense<S: Scalar>(&self, l: MatRefOf<'_, S>, b: MatMutOf<'_, S>) -> SimSpan {
        let cost = KernelCost::trsm_dense_of::<S>(l.nrows(), b.ncols());
        if !self.cost_only {
            sc_dense::trsm_lower_left(l, b);
        }
        self.submit(&cost)
    }

    /// Sparse TRSM: solve `L X = B` in place with a CSC factor.
    pub fn trsm_sparse<S: Scalar>(&self, l: &CscOf<S>, b: MatMutOf<'_, S>) -> SimSpan {
        let cost = KernelCost::trsm_sparse_of::<S>(l.nnz(), b.ncols());
        if !self.cost_only {
            sc_sparse::csc_lower_solve_mat(l, b);
        }
        self.submit(&cost)
    }

    /// Dense GEMM `C = alpha op(A) op(B) + beta C`.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm<S: Scalar>(
        &self,
        alpha: S,
        a: MatRefOf<'_, S>,
        ta: Trans,
        b: MatRefOf<'_, S>,
        tb: Trans,
        beta: S,
        c: MatMutOf<'_, S>,
    ) -> SimSpan {
        let (m, n) = (c.nrows(), c.ncols());
        let k = match ta {
            Trans::No => a.ncols(),
            Trans::Yes => a.nrows(),
        };
        let cost = KernelCost::gemm_of::<S>(m, n, k);
        if !self.cost_only {
            sc_dense::gemm(alpha, a, ta, b, tb, beta, c);
        }
        self.submit(&cost)
    }

    /// Sparse-dense GEMM `C = alpha A B + beta C` (`A` CSC).
    pub fn spmm<S: Scalar>(
        &self,
        alpha: S,
        a: &CscOf<S>,
        b: MatRefOf<'_, S>,
        beta: S,
        mut c: MatMutOf<'_, S>,
    ) -> SimSpan {
        let cost = KernelCost::spmm_of::<S>(a.nnz(), b.ncols());
        if !self.cost_only {
            a.spmm(alpha, b, beta, &mut c);
        }
        self.submit(&cost)
    }

    /// SYRK `C(lower) = alpha Aᵀ A + beta C`.
    pub fn syrk<S: Scalar>(
        &self,
        alpha: S,
        a: MatRefOf<'_, S>,
        beta: S,
        c: MatMutOf<'_, S>,
    ) -> SimSpan {
        let cost = KernelCost::syrk_of::<S>(a.ncols(), a.nrows());
        if !self.cost_only {
            sc_dense::syrk_t(alpha, a, beta, c);
        }
        self.submit(&cost)
    }

    /// Gather `count` scattered `f64` elements (pruning compaction,
    /// permutations).
    pub fn gather(&self, count: usize) -> SimSpan {
        self.submit(&KernelCost::gather(count))
    }

    /// Gather `count` scattered elements of precision `S`.
    pub fn gather_of<S: Scalar>(&self, count: usize) -> SimSpan {
        self.submit(&KernelCost::gather_of::<S>(count))
    }

    /// Dense GEMV `y = alpha A x + beta y` (explicit dual operator apply).
    pub fn gemv<S: Scalar>(
        &self,
        alpha: S,
        a: MatRefOf<'_, S>,
        x: &[S],
        beta: S,
        y: &mut [S],
    ) -> SimSpan {
        let cost = KernelCost::gemv_of::<S>(a.nrows(), a.ncols());
        if !self.cost_only {
            sc_dense::gemv(alpha, a, x, beta, y);
        }
        self.submit(&cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::timeline::Device;
    use sc_dense::Mat;

    fn kernels() -> GpuKernels {
        let d = Device::new(DeviceSpec::a100(), 2);
        GpuKernels::new(d.stream(0))
    }

    fn lower(n: usize) -> Mat {
        Mat::from_fn(n, n, |i, j| {
            if i == j {
                2.0
            } else if i > j {
                -0.1
            } else {
                0.0
            }
        })
    }

    #[test]
    fn captured_span_is_union_of_submissions() {
        let k = kernels();
        assert!(k.captured_span().is_none());
        let a = k.upload_bytes(1000);
        let b = k.gather(64);
        let got = k.captured_span().expect("span captured");
        assert_eq!(got.start, a.start);
        assert_eq!(got.end, b.end);
        k.reset_captured_span();
        assert!(k.captured_span().is_none());
        let c = k.gather(8);
        assert_eq!(k.captured_span(), Some(c));
    }

    #[test]
    fn trsm_computes_and_advances_clock() {
        let k = kernels();
        let l = lower(8);
        let b = Mat::from_fn(8, 3, |i, j| (i + j) as f64);
        let mut x = b.clone();
        let span = k.trsm_dense(l.as_ref(), x.as_mut());
        assert!(span.duration() > 0.0);
        assert!(k.stream().time() >= span.end - 1e-18);
        // verify against host solve
        let mut xd = b.clone();
        sc_dense::trsm_lower_left(l.as_ref(), xd.as_mut());
        assert!(sc_dense::max_abs_diff(x.as_ref(), xd.as_ref()) < 1e-14);
    }

    #[test]
    fn syrk_and_gemm_results_match_host() {
        let k = kernels();
        let a = Mat::from_fn(6, 4, |i, j| (i * 3 + j) as f64 * 0.1);
        let mut c1 = Mat::zeros(4, 4);
        k.syrk(1.0, a.as_ref(), 0.0, c1.as_mut());
        let mut c2 = Mat::zeros(4, 4);
        sc_dense::syrk_t(1.0, a.as_ref(), 0.0, c2.as_mut());
        assert!(sc_dense::max_abs_diff(c1.as_ref(), c2.as_ref()) < 1e-14);

        let b = Mat::from_fn(4, 5, |i, j| (i + j) as f64);
        let mut g1 = Mat::zeros(6, 5);
        k.gemm(
            1.0,
            a.as_ref(),
            Trans::No,
            b.as_ref(),
            Trans::No,
            0.0,
            g1.as_mut(),
        );
        let mut g2 = Mat::zeros(6, 5);
        sc_dense::gemm(
            1.0,
            a.as_ref(),
            Trans::No,
            b.as_ref(),
            Trans::No,
            0.0,
            g2.as_mut(),
        );
        assert!(sc_dense::max_abs_diff(g1.as_ref(), g2.as_ref()) < 1e-14);
    }

    #[test]
    fn many_small_kernels_cost_more_than_one_big() {
        // the launch-overhead effect behind the paper's Figure 5 left branch
        let d = Device::new(DeviceSpec::a100(), 1);
        let k = GpuKernels::new(d.stream(0));
        let l = lower(64);
        let b = Mat::from_fn(64, 32, |i, j| (i + j) as f64);
        let mut x = b.clone();
        let one = k.trsm_dense(l.as_ref(), x.as_mut()).duration();
        let mut total_many = 0.0;
        for _ in 0..64 {
            let mut xs = Mat::from_fn(1, 32, |_, j| j as f64);
            let ls = lower(1);
            total_many += k.trsm_dense(ls.as_ref(), xs.as_mut()).duration();
        }
        assert!(
            total_many > 5.0 * one,
            "launch overhead should dominate: {total_many} vs {one}"
        );
    }

    #[test]
    fn transfers_advance_clock_by_bandwidth() {
        let d = Device::new(DeviceSpec::a100(), 1);
        let k = GpuKernels::new(d.stream(0));
        let span = k.upload_bytes(250_000_000); // 250 MB over 25 GB/s = 10 ms
        assert!(span.duration() > 9e-3 && span.duration() < 12e-3);
    }
}
