//! Device memory pools per the paper's §3.1.
//!
//! The original algorithm "mentally splits the GPU memory into two parts —
//! persistent and temporary. … The temporary memory allocator can reuse
//! memory without calling the GPU library's memory allocation routines. If
//! there is enough remaining memory in the allocator's memory pool, memory is
//! assigned and returned immediately. Otherwise, the allocating thread is
//! blocked until enough memory becomes available."
//!
//! [`TempPool`] reproduces exactly that contract (bytes accounting +
//! blocking), which is what the multi-stream assembly loop relies on to bound
//! its footprint when many subdomains are in flight.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

struct PoolState {
    free: usize,
    high_water: usize,
    capacity: usize,
}

/// Blocking temporary-arena allocator.
pub struct TempPool {
    state: Mutex<PoolState>,
    available: Condvar,
}

impl TempPool {
    /// Create a pool of `capacity` bytes.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(TempPool {
            state: Mutex::new(PoolState {
                free: capacity,
                high_water: 0,
                capacity,
            }),
            available: Condvar::new(),
        })
    }

    /// Pool capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.state.lock().capacity
    }

    /// Currently free bytes.
    pub fn free_bytes(&self) -> usize {
        self.state.lock().free
    }

    /// Largest amount of simultaneously allocated bytes observed.
    pub fn high_water(&self) -> usize {
        self.state.lock().high_water
    }

    /// Allocate `bytes`, blocking until available. Panics if the request can
    /// never be satisfied (larger than capacity) — that is a configuration
    /// error, mirroring a CUDA OOM on a buffer bigger than the card.
    pub fn alloc(self: &Arc<Self>, bytes: usize) -> TempAlloc {
        let mut st = self.state.lock();
        assert!(
            bytes <= st.capacity,
            "temporary allocation of {bytes} B exceeds pool capacity {} B",
            st.capacity
        );
        while st.free < bytes {
            self.available.wait(&mut st);
        }
        st.free -= bytes;
        let used = st.capacity - st.free;
        if used > st.high_water {
            st.high_water = used;
        }
        drop(st);
        TempAlloc {
            pool: Arc::clone(self),
            bytes,
        }
    }

    /// Non-blocking variant: `None` when the pool cannot satisfy the request
    /// right now.
    pub fn try_alloc(self: &Arc<Self>, bytes: usize) -> Option<TempAlloc> {
        let mut st = self.state.lock();
        if bytes > st.free {
            return None;
        }
        st.free -= bytes;
        let used = st.capacity - st.free;
        if used > st.high_water {
            st.high_water = used;
        }
        drop(st);
        Some(TempAlloc {
            pool: Arc::clone(self),
            bytes,
        })
    }

    fn release(&self, bytes: usize) {
        let mut st = self.state.lock();
        st.free += bytes;
        debug_assert!(st.free <= st.capacity, "double free in temp pool");
        drop(st);
        self.available.notify_all();
    }
}

/// RAII guard for a temporary allocation; returns the bytes on drop.
pub struct TempAlloc {
    pool: Arc<TempPool>,
    bytes: usize,
}

impl TempAlloc {
    /// Size of this allocation.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl Drop for TempAlloc {
    fn drop(&mut self) {
        self.pool.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn alloc_and_drop_roundtrip() {
        let p = TempPool::new(1000);
        {
            let a = p.alloc(400);
            assert_eq!(p.free_bytes(), 600);
            let b = p.alloc(600);
            assert_eq!(p.free_bytes(), 0);
            drop(a);
            assert_eq!(p.free_bytes(), 400);
            drop(b);
        }
        assert_eq!(p.free_bytes(), 1000);
        assert_eq!(p.high_water(), 1000);
    }

    #[test]
    fn try_alloc_fails_when_exhausted() {
        let p = TempPool::new(100);
        let _a = p.alloc(80);
        assert!(p.try_alloc(50).is_none());
        assert!(p.try_alloc(20).is_some());
    }

    #[test]
    #[should_panic(expected = "exceeds pool capacity")]
    fn oversized_request_panics() {
        let p = TempPool::new(10);
        let _ = p.alloc(11);
    }

    #[test]
    fn blocked_thread_wakes_on_release() {
        let p = TempPool::new(100);
        let a = p.alloc(100);
        let p2 = Arc::clone(&p);
        let t = std::thread::spawn(move || {
            // blocks until the main thread drops `a`
            let g = p2.alloc(60);
            g.bytes()
        });
        std::thread::sleep(Duration::from_millis(30));
        drop(a);
        let got = t.join().unwrap();
        assert_eq!(got, 60);
    }

    #[test]
    fn many_threads_never_exceed_capacity() {
        let p = TempPool::new(256);
        std::thread::scope(|s| {
            for i in 0..8 {
                let p = Arc::clone(&p);
                s.spawn(move || {
                    for _ in 0..50 {
                        let g = p.alloc(32 + (i % 3) * 16);
                        std::hint::black_box(&g);
                    }
                });
            }
        });
        assert_eq!(p.free_bytes(), 256);
        assert!(p.high_water() <= 256);
    }
}
