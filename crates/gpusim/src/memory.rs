//! Device memory pools per the paper's §3.1.
//!
//! The original algorithm "mentally splits the GPU memory into two parts —
//! persistent and temporary. … The temporary memory allocator can reuse
//! memory without calling the GPU library's memory allocation routines. If
//! there is enough remaining memory in the allocator's memory pool, memory is
//! assigned and returned immediately. Otherwise, the allocating thread is
//! blocked until enough memory becomes available."
//!
//! [`TempPool`] reproduces exactly that contract (bytes accounting +
//! blocking), which is what the multi-stream assembly loop relies on to bound
//! its footprint when many subdomains are in flight.
//!
//! Waiting is **FIFO**: each blocked [`TempPool::alloc`] takes a ticket and
//! is admitted strictly in ticket order. Without the queue, a blocked large
//! request could wait forever while a stream of smaller requests kept
//! slipping past the condvar every time bytes were released — admission
//! order is part of the allocator's contract, not a best-effort hint.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;

struct PoolState {
    free: usize,
    high_water: usize,
    capacity: usize,
    /// Tickets of threads blocked in [`TempPool::alloc`], oldest first.
    waiters: VecDeque<u64>,
    /// Next ticket to hand out.
    next_ticket: u64,
}

/// Blocking temporary-arena allocator.
pub struct TempPool {
    state: Mutex<PoolState>,
    available: Condvar,
}

impl TempPool {
    /// Create a pool of `capacity` bytes.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(TempPool {
            state: Mutex::new(PoolState {
                free: capacity,
                high_water: 0,
                capacity,
                waiters: VecDeque::new(),
                next_ticket: 0,
            }),
            available: Condvar::new(),
        })
    }

    /// Pool capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.state.lock().capacity
    }

    /// Currently free bytes.
    pub fn free_bytes(&self) -> usize {
        self.state.lock().free
    }

    /// Largest amount of simultaneously allocated bytes observed.
    pub fn high_water(&self) -> usize {
        self.state.lock().high_water
    }

    /// Allocate `bytes`, blocking until available. Admission is **FIFO**:
    /// a blocked request is served strictly in arrival order, so a large
    /// request cannot be starved by a stream of smaller ones that would
    /// otherwise keep fitting into the freed bytes first. Panics if the
    /// request can never be satisfied (larger than capacity) — that is a
    /// configuration error, mirroring a CUDA OOM on a buffer bigger than the
    /// card.
    ///
    /// **Contract (the paper's usage):** a worker allocates the whole
    /// temporary footprint of its subdomain as *one* request and holds no
    /// earlier allocation while blocking. Strict admission ordering means a
    /// thread that blocks on a second allocation while still holding a
    /// first can deadlock behind a queued request that is itself waiting
    /// for the held bytes — size the request up front, or use
    /// [`TempPool::try_alloc`] for opportunistic nested buffers.
    pub fn alloc(self: &Arc<Self>, bytes: usize) -> TempAlloc {
        let mut st = self.state.lock();
        assert!(
            bytes <= st.capacity,
            "temporary allocation of {bytes} B exceeds pool capacity {} B",
            st.capacity
        );
        if st.free < bytes || !st.waiters.is_empty() {
            // take a ticket and wait until (a) it is our turn and (b) the
            // bytes are there; later arrivals queue behind us even when
            // their smaller requests would fit right now
            let ticket = st.next_ticket;
            st.next_ticket += 1;
            st.waiters.push_back(ticket);
            while st.waiters.front() != Some(&ticket) || st.free < bytes {
                self.available.wait(&mut st);
            }
            st.waiters.pop_front();
        }
        st.free -= bytes;
        let used = st.capacity - st.free;
        if used > st.high_water {
            st.high_water = used;
        }
        drop(st);
        // the next ticket holder may also fit into what remains
        self.available.notify_all();
        TempAlloc {
            pool: Arc::clone(self),
            bytes,
        }
    }

    /// Non-blocking variant: `None` when the pool cannot satisfy the request
    /// right now. Honors the FIFO queue — when blocked allocations are
    /// waiting, `try_alloc` refuses rather than jumping the line.
    pub fn try_alloc(self: &Arc<Self>, bytes: usize) -> Option<TempAlloc> {
        let mut st = self.state.lock();
        if bytes > st.free || !st.waiters.is_empty() {
            return None;
        }
        st.free -= bytes;
        let used = st.capacity - st.free;
        if used > st.high_water {
            st.high_water = used;
        }
        drop(st);
        Some(TempAlloc {
            pool: Arc::clone(self),
            bytes,
        })
    }

    fn release(&self, bytes: usize) {
        let mut st = self.state.lock();
        st.free += bytes;
        debug_assert!(st.free <= st.capacity, "double free in temp pool");
        drop(st);
        self.available.notify_all();
    }
}

/// RAII guard for a temporary allocation; returns the bytes on drop.
pub struct TempAlloc {
    pool: Arc<TempPool>,
    bytes: usize,
}

impl TempAlloc {
    /// Size of this allocation.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl Drop for TempAlloc {
    fn drop(&mut self) {
        self.pool.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn alloc_and_drop_roundtrip() {
        let p = TempPool::new(1000);
        {
            let a = p.alloc(400);
            assert_eq!(p.free_bytes(), 600);
            let b = p.alloc(600);
            assert_eq!(p.free_bytes(), 0);
            drop(a);
            assert_eq!(p.free_bytes(), 400);
            drop(b);
        }
        assert_eq!(p.free_bytes(), 1000);
        assert_eq!(p.high_water(), 1000);
    }

    #[test]
    fn try_alloc_fails_when_exhausted() {
        let p = TempPool::new(100);
        let _a = p.alloc(80);
        assert!(p.try_alloc(50).is_none());
        assert!(p.try_alloc(20).is_some());
    }

    #[test]
    #[should_panic(expected = "exceeds pool capacity")]
    fn oversized_request_panics() {
        let p = TempPool::new(10);
        let _ = p.alloc(11);
    }

    #[test]
    fn blocked_thread_wakes_on_release() {
        let p = TempPool::new(100);
        let a = p.alloc(100);
        let p2 = Arc::clone(&p);
        let t = std::thread::spawn(move || {
            // blocks until the main thread drops `a`
            let g = p2.alloc(60);
            g.bytes()
        });
        std::thread::sleep(Duration::from_millis(30));
        drop(a);
        let got = t.join().unwrap();
        assert_eq!(got, 60);
    }

    #[test]
    fn fifo_big_request_wins_against_a_stream_of_small_ones() {
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

        // Starvation regression: a full-capacity request arrives while the
        // pool is partially held, and small allocations keep churning. With
        // wakeup-race admission the small ones would keep slipping past the
        // condvar forever; FIFO tickets guarantee the big request is served
        // as soon as everything ahead of it drains.
        let p = TempPool::new(100);
        let holder = p.alloc(60);

        let stop = Arc::new(AtomicBool::new(false));
        let churned = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            // churner: an endless stream of 30 B allocations
            let p2 = Arc::clone(&p);
            let stop2 = Arc::clone(&stop);
            let churned2 = Arc::clone(&churned);
            s.spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    let g = p2.alloc(30);
                    churned2.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_micros(200));
                    drop(g);
                }
            });
            // let the churn establish itself, then enqueue the big request
            std::thread::sleep(Duration::from_millis(20));
            let p3 = Arc::clone(&p);
            let big = s.spawn(move || {
                let g = p3.alloc(100);
                g.bytes()
            });
            std::thread::sleep(Duration::from_millis(20));
            // release the held 60 B: once the in-flight small one drains, the
            // big request is next in line and must be admitted
            drop(holder);
            assert_eq!(big.join().unwrap(), 100, "big request must be served");
            stop.store(true, Ordering::Relaxed);
        });
        assert!(
            churned.load(Ordering::Relaxed) > 0,
            "the small-allocation churn must actually have run"
        );
        assert_eq!(p.free_bytes(), 100);
    }

    #[test]
    fn try_alloc_does_not_jump_the_fifo_queue() {
        let p = TempPool::new(100);
        let holder = p.alloc(80);
        let p2 = Arc::clone(&p);
        let waiter = std::thread::spawn(move || p2.alloc(50).bytes());
        // wait until the 50 B request is queued
        while p.state.lock().waiters.is_empty() {
            std::thread::sleep(Duration::from_millis(1));
        }
        // 20 B fit into the free bytes, but a blocked allocation is ahead
        assert!(p.try_alloc(20).is_none(), "try_alloc must not overtake");
        drop(holder);
        assert_eq!(waiter.join().unwrap(), 50);
    }

    #[test]
    fn many_threads_never_exceed_capacity() {
        let p = TempPool::new(256);
        std::thread::scope(|s| {
            for i in 0..8 {
                let p = Arc::clone(&p);
                s.spawn(move || {
                    for _ in 0..50 {
                        let g = p.alloc(32 + (i % 3) * 16);
                        std::hint::black_box(&g);
                    }
                });
            }
        });
        assert_eq!(p.free_bytes(), 256);
        assert!(p.high_water() <= 256);
    }
}
