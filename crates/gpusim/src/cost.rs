//! Kernel cost descriptors and cost builders for the BLAS/sparse-BLAS kernel
//! set the Schur assembler uses.
//!
//! Every builder that moves matrix values has a `_of::<S>` variant pricing
//! bytes at `S::BYTES` per element (`f32` halves value traffic; index
//! traffic stays 8 bytes). The unsuffixed names pin `f64` and are bitwise
//! identical to the historical constants.

use sc_dense::Scalar;

/// Bytes of one stored index (row/column ids are always `usize`-sized on
/// device; the cost model charges 8 regardless of value precision).
const INDEX_BYTES: f64 = 8.0;

/// Work performed by one kernel launch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelCost {
    /// Kernel family this cost describes (diagnostics: names the kernel in
    /// validation errors raised at submission).
    pub label: &'static str,
    /// Floating-point operations.
    pub flops: f64,
    /// Bytes moved (device memory traffic, or transfer size for copies).
    pub bytes: f64,
    /// True for host<->device copies (charged against PCIe bandwidth).
    pub over_pcie: bool,
}

impl KernelCost {
    /// A compute kernel with the given FLOPs and device-memory traffic.
    pub fn compute(flops: f64, bytes: f64) -> Self {
        KernelCost {
            label: "compute",
            flops,
            bytes,
            over_pcie: false,
        }
    }

    /// A host<->device transfer of `bytes`.
    pub fn transfer(bytes: f64) -> Self {
        KernelCost {
            label: "transfer",
            flops: 0.0,
            bytes,
            over_pcie: true,
        }
    }

    /// H2D transfer of a CSC matrix with `nnz` stored entries in precision
    /// `S`: 8-byte index + one `S` value per entry (pointer array is noise).
    /// The single home of the sparse-transfer cost model — `GpuKernels` and
    /// the scheduled batch driver's cost recorder both use it.
    pub fn csc_transfer_of<S: Scalar>(nnz: usize) -> Self {
        KernelCost {
            label: "upload_csc",
            ..KernelCost::transfer((INDEX_BYTES + S::BYTES as f64) * nnz as f64)
        }
    }

    /// H2D transfer of an `f64` CSC matrix (16 bytes per stored entry).
    pub fn csc_transfer(nnz: usize) -> Self {
        Self::csc_transfer_of::<f64>(nnz)
    }

    /// Dense TRSM `L X = B` in precision `S`: factor `n × n`, RHS `n × m`.
    pub fn trsm_dense_of<S: Scalar>(n: usize, m: usize) -> Self {
        let flops = n as f64 * n as f64 * m as f64; // n²m (triangular)
        let bytes = S::BYTES as f64 * (0.5 * n as f64 * n as f64 + 2.0 * n as f64 * m as f64);
        KernelCost {
            label: "trsm_dense",
            ..KernelCost::compute(flops, bytes)
        }
    }

    /// Dense `f64` TRSM.
    pub fn trsm_dense(n: usize, m: usize) -> Self {
        Self::trsm_dense_of::<f64>(n, m)
    }

    /// Sparse TRSM in precision `S` with a CSC/CSR factor of `nnz` non-zeros
    /// and `m` RHS columns: every factor entry touches every RHS column once.
    pub fn trsm_sparse_of<S: Scalar>(nnz: usize, m: usize) -> Self {
        let flops = 2.0 * nnz as f64 * m as f64;
        // sparse kernels are memory-heavier per flop (index traffic, poor
        // locality): charge the factor read per column block of 32
        let col_blocks = (m as f64 / 32.0).ceil().max(1.0);
        let bytes = S::BYTES as f64 * (2.0 * nnz as f64) * col_blocks
            + (INDEX_BYTES + S::BYTES as f64) * nnz as f64;
        KernelCost {
            label: "trsm_sparse",
            ..KernelCost::compute(flops, bytes)
        }
    }

    /// Sparse `f64` TRSM.
    pub fn trsm_sparse(nnz: usize, m: usize) -> Self {
        Self::trsm_sparse_of::<f64>(nnz, m)
    }

    /// SYRK `C += Aᵀ A` in precision `S` with `A` `k × n` (output `n × n`,
    /// lower triangle).
    pub fn syrk_of<S: Scalar>(n: usize, k: usize) -> Self {
        let flops = n as f64 * n as f64 * k as f64; // n²k (half of 2n²k)
        let bytes = S::BYTES as f64 * (n as f64 * k as f64 + 0.5 * n as f64 * n as f64);
        KernelCost {
            label: "syrk",
            ..KernelCost::compute(flops, bytes)
        }
    }

    /// `f64` SYRK.
    pub fn syrk(n: usize, k: usize) -> Self {
        Self::syrk_of::<f64>(n, k)
    }

    /// GEMM `C += A B` in precision `S` with `A` `m × k`, `B` `k × n`.
    pub fn gemm_of<S: Scalar>(m: usize, n: usize, k: usize) -> Self {
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        let bytes =
            S::BYTES as f64 * (m as f64 * k as f64 + k as f64 * n as f64 + m as f64 * n as f64);
        KernelCost {
            label: "gemm",
            ..KernelCost::compute(flops, bytes)
        }
    }

    /// `f64` GEMM.
    pub fn gemm(m: usize, n: usize, k: usize) -> Self {
        Self::gemm_of::<f64>(m, n, k)
    }

    /// Sparse-times-dense GEMM in precision `S` with `nnz` stored entries
    /// against `n` columns.
    pub fn spmm_of<S: Scalar>(nnz: usize, n: usize) -> Self {
        let flops = 2.0 * nnz as f64 * n as f64;
        let bytes = (INDEX_BYTES + S::BYTES as f64) * nnz as f64
            + S::BYTES as f64 * nnz as f64 * (n as f64 / 16.0).ceil();
        KernelCost {
            label: "spmm",
            ..KernelCost::compute(flops, bytes)
        }
    }

    /// `f64` sparse-times-dense GEMM.
    pub fn spmm(nnz: usize, n: usize) -> Self {
        Self::spmm_of::<f64>(nnz, n)
    }

    /// Gather/scatter of `count` elements in precision `S` (pruning
    /// compaction, permutation): one index read + one value move per element.
    pub fn gather_of<S: Scalar>(count: usize) -> Self {
        KernelCost {
            label: "gather",
            ..KernelCost::compute(0.0, (INDEX_BYTES + S::BYTES as f64) * count as f64)
        }
    }

    /// Gather/scatter of `count` `f64` elements.
    pub fn gather(count: usize) -> Self {
        Self::gather_of::<f64>(count)
    }

    /// Dense GEMV `y = A x` in precision `S` for `m × n` A.
    pub fn gemv_of<S: Scalar>(m: usize, n: usize) -> Self {
        let flops = 2.0 * m as f64 * n as f64;
        let bytes = S::BYTES as f64 * (m as f64 * n as f64);
        KernelCost {
            label: "gemv",
            ..KernelCost::compute(flops, bytes)
        }
    }

    /// Dense `f64` GEMV.
    pub fn gemv(m: usize, n: usize) -> Self {
        Self::gemv_of::<f64>(m, n)
    }

    /// `Err` with a descriptive message when the cost carries NaN, infinite,
    /// or negative work — checked by [`Device::submit`] so a malformed cost
    /// fails loudly at the submission site instead of as an opaque
    /// `partial_cmp` panic deep inside the timeline's slot heap.
    ///
    /// [`Device::submit`]: crate::timeline::Device::submit
    pub fn validate(&self) -> Result<(), String> {
        if !(self.flops.is_finite() && self.flops >= 0.0) {
            return Err(format!(
                "kernel '{}': invalid flops {} (must be finite and >= 0)",
                self.label, self.flops
            ));
        }
        if !(self.bytes.is_finite() && self.bytes >= 0.0) {
            return Err(format!(
                "kernel '{}': invalid bytes {} (must be finite and >= 0)",
                self.label, self.bytes
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trsm_scales_quadratically_in_n() {
        let a = KernelCost::trsm_dense(100, 10);
        let b = KernelCost::trsm_dense(200, 10);
        assert!((b.flops / a.flops - 4.0).abs() < 1e-12);
    }

    #[test]
    fn transfer_has_no_flops() {
        let t = KernelCost::transfer(1024.0);
        assert_eq!(t.flops, 0.0);
        assert!(t.over_pcie);
    }

    #[test]
    fn csc_transfer_charges_16_bytes_per_entry() {
        let t = KernelCost::csc_transfer(100);
        assert_eq!(t.bytes, 1600.0);
        assert!(t.over_pcie);
        assert_eq!(t.label, "upload_csc");
    }

    #[test]
    fn gemm_flops_standard() {
        let c = KernelCost::gemm(3, 4, 5);
        assert_eq!(c.flops, 120.0);
    }

    #[test]
    fn syrk_half_of_gemm() {
        let s = KernelCost::syrk(10, 20);
        let g = KernelCost::gemm(10, 10, 20);
        assert!((s.flops * 2.0 - g.flops).abs() < 1e-12);
    }

    #[test]
    fn f32_value_bytes_are_exactly_half_of_f64() {
        // pure value traffic: no index bytes in the model → exact halving
        for (a, b) in [
            (
                KernelCost::trsm_dense_of::<f32>(64, 8),
                KernelCost::trsm_dense_of::<f64>(64, 8),
            ),
            (
                KernelCost::syrk_of::<f32>(16, 64),
                KernelCost::syrk_of::<f64>(16, 64),
            ),
            (
                KernelCost::gemm_of::<f32>(8, 8, 8),
                KernelCost::gemm_of::<f64>(8, 8, 8),
            ),
            (
                KernelCost::gemv_of::<f32>(32, 32),
                KernelCost::gemv_of::<f64>(32, 32),
            ),
        ] {
            assert_eq!(a.bytes * 2.0, b.bytes, "{}", a.label);
            assert_eq!(a.flops, b.flops, "{} flops are width-independent", a.label);
        }
    }

    #[test]
    fn f32_csc_transfer_keeps_full_index_bytes() {
        // 8-byte index + 4-byte value = 12 B/entry, vs 16 B/entry for f64
        let t32 = KernelCost::csc_transfer_of::<f32>(100);
        let t64 = KernelCost::csc_transfer_of::<f64>(100);
        assert_eq!(t32.bytes, 1200.0);
        assert_eq!(t64.bytes, 1600.0);
        // the value portion alone halves exactly
        let idx = 8.0 * 100.0;
        assert_eq!((t32.bytes - idx) * 2.0, t64.bytes - idx);
    }

    #[test]
    fn unsuffixed_builders_pin_f64() {
        assert_eq!(
            KernelCost::trsm_sparse(500, 16),
            KernelCost::trsm_sparse_of::<f64>(500, 16)
        );
        assert_eq!(
            KernelCost::spmm(500, 16),
            KernelCost::spmm_of::<f64>(500, 16)
        );
        assert_eq!(KernelCost::gather(64), KernelCost::gather_of::<f64>(64));
    }

    #[test]
    fn validate_rejects_nan_and_negative() {
        assert!(KernelCost::compute(1.0, 1.0).validate().is_ok());
        assert!(KernelCost::compute(0.0, 0.0).validate().is_ok());
        let nan = KernelCost::compute(f64::NAN, 1.0);
        let err = nan.validate().unwrap_err();
        assert!(err.contains("compute"), "error must name the kernel: {err}");
        assert!(KernelCost::compute(1.0, f64::NEG_INFINITY)
            .validate()
            .is_err());
        assert!(KernelCost::compute(-1.0, 0.0).validate().is_err());
        let mut t = KernelCost::trsm_dense(4, 4);
        t.bytes = f64::NAN;
        assert!(t.validate().unwrap_err().contains("trsm_dense"));
    }
}
