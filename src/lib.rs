//! # schur-dd
//!
//! Sparsity-utilizing (simulated-)GPU assembly of Schur complement matrices
//! in FETI domain decomposition — a from-scratch Rust reproduction of
//! *"Utilizing Sparsity in the GPU-accelerated Assembly of Schur Complement
//! Matrices in Domain Decomposition Methods"* (Homola, Meca, Říha,
//! Brzobohatý — SC 2025, arXiv:2509.21037).
//!
//! ## Crate map
//!
//! | crate | role |
//! |-------|------|
//! | [`sc_dense`]  | dense BLAS-like kernels (GEMM/SYRK/TRSM/Cholesky) |
//! | [`sc_sparse`] | CSR/CSC/COO, permutations, pattern analysis |
//! | [`sc_order`]  | nested dissection / RCM / minimum degree orderings |
//! | [`sc_factor`] | sparse Cholesky (simplicial + supernodal multifrontal) |
//! | [`sc_fem`]    | heat-transfer meshes, decomposition, gluing `B`, kernels `R` |
//! | [`sc_gpu`]    | event-driven GPU execution simulator (A100 cost model) |
//! | [`sc_core`]   | **the paper's contribution**: stepped TRSM/SYRK splitting + the batched multi-subdomain driver |
//! | [`sc_feti`]   | Total-FETI solver (PCPG, dual operator strategies) |
//! | [`sc_serve`]  | persistent multi-tenant solver service (JSON-lines intake, cross-session caching, fair scheduling) |
//!
//! `sc_bench` (not re-exported) holds the experiment drivers that regenerate
//! the paper's tables and figures. The repository's `ARCHITECTURE.md` maps
//! the data flow between these crates, the planner's topology hierarchy,
//! and the record-then-replay execution model.
//!
//! ## Quickstart
//!
//! Options are captured once at construction; the preprocessed solver
//! handle serves any number of right-hand sides:
//!
//! ```
//! use schur_dd::prelude::*;
//!
//! // 2D heat transfer, 3x3 cells per subdomain, 2x2 subdomains
//! let problem = HeatProblem::build_2d(3, (2, 2), Gluing::Redundant);
//! let solver = FetiSolverBuilder::new()
//!     .options(FetiOptions::default())
//!     .backend(Backend::cpu())
//!     .formulation(FormulationChoice::Explicit)
//!     .assembly(ScConfig::optimized(false, false))
//!     .build(&problem);
//! let solution = solver.solve();
//! assert!(solution.stats.converged);
//!
//! // amortize preprocessing across more load cases
//! let loads: Vec<Vec<f64>> = problem
//!     .subdomains
//!     .iter()
//!     .map(|sd| sd.f.iter().map(|v| 0.5 * v).collect())
//!     .collect();
//! assert!(solver.solve_rhs(&loads).stats.converged);
//! ```
//!
//! Batched Schur-complement assembly goes through the same composable
//! surface — pick a [`sc_core::Backend`], bind it in an
//! [`sc_core::AssemblySession`], read one [`sc_core::AssemblyReport`]:
//!
//! ```no_run
//! use schur_dd::prelude::*;
//! # let items: Vec<BatchItem> = Vec::new();
//! let device = Device::new(DeviceSpec::a100(), 4);
//! let session = AssemblySession::new(Backend::gpu(device), ScConfig::Auto);
//! let result = session.assemble(&items);
//! println!("makespan {:.3} ms", result.report.makespan * 1e3);
//! ```

pub use sc_core;
pub use sc_dense;
pub use sc_factor;
pub use sc_fem;
pub use sc_feti;
pub use sc_gpu;
pub use sc_order;
pub use sc_serve;
pub use sc_sparse;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use sc_core::{
        assemble_sc, estimate_apply, estimate_cost, plan_hybrid, plan_topology, plan_topology_by,
        ApplyEstimate, AssemblyReport, AssemblyResult, AssemblySession, Backend, BatchItem,
        BatchReport, BatchResult, BatchSource, BlockCutsCache, BlockParam, ClusterOptions,
        ClusterPlan, ClusterPlanError, ClusterReport, ClusterResult, CostEstimate, CpuExec,
        DeviceReport, DeviceSlot, FactorStorage, Formulation, GpuExec, HybridForce, HybridPlan,
        HybridPlanOptions, HybridSummary, IntoBatchSource, LazyBatch, NodeReport, Precision,
        RecordingExec, ScConfig, ScParams, ScheduleOptions, ScheduledSpan, SteppedRhs, StreamLane,
        StreamPolicy, SubdomainTiming, SyrkVariant, TopoPlan, Topology, TrsmVariant,
    };
    // deprecated free-function drivers and planners, kept one release for
    // migration (the planners are now thin wrappers over `plan_topology`)
    #[allow(deprecated)]
    pub use sc_core::{
        assemble_sc_batch, assemble_sc_batch_cluster, assemble_sc_batch_gpu,
        assemble_sc_batch_scheduled, plan_cluster, plan_cluster_spill,
    };
    pub use sc_dense::Mat;
    pub use sc_factor::{CholOptions, Engine, SparseCholesky};
    pub use sc_fem::{Gluing, HeatProblem};
    pub use sc_feti::solver::DualMode;
    pub use sc_feti::{
        apply_implicit, apply_implicit_with, preprocess_approach, BoundaryMap, DualOpApproach,
        DualOperator, FetiOptions, FetiSolution, FetiSolver, FetiSolverBuilder, FormulationChoice,
        HybridOptions, HybridReport, PcpgBreakdown, RefinementStats, SubdomainFactors,
    };
    pub use sc_gpu::{
        Device, DevicePool, DeviceSpec, GpuKernels, Interconnect, NodePool, NodeSpec,
    };
    pub use sc_order::Ordering;
    pub use sc_serve::{JobOutcome, ServeHandle, ServeOptions};
    pub use sc_sparse::{Csc, Csr, Perm};
}
