//! Solver-as-a-service in-process: drive the persistent multi-tenant
//! service through its JSON-lines protocol, watch the cross-session cache
//! turn repeat preprocessing into hits, and read per-tenant roll-ups.
//!
//! The same service speaks the identical protocol over a pipe or TCP via
//! the `sc_serve` binary (`cargo run -p sc_serve --release`); this example
//! uses the in-process [`ServeHandle`] so the outcomes (λ, per-subdomain u)
//! stay retrievable.
//!
//! Run with: `cargo run --release --example serve`

use schur_dd::prelude::*;

fn main() {
    let mut svc = ServeHandle::new(ServeOptions::default());

    // two tenants submit jobs over the same mesh family: the first job
    // pays preprocessing (symbolic + numeric factorization of every
    // subdomain), every later job with the same content key hits the cache
    let jobs = [
        ("acme", "nightly-1"),
        ("acme", "nightly-2"),
        ("zeus", "explore-1"),
    ];
    for (tenant, job) in jobs {
        let line = format!(
            "{{\"op\":\"solve\",\"tenant\":\"{tenant}\",\"job\":\"{job}\",\
             \"dim\":2,\"cells\":8,\"subs\":[2,2],\"backend\":\"cluster\"}}"
        );
        for reply in svc.request(&line) {
            println!("<- {reply}");
        }
    }
    for reply in svc.request("{\"op\":\"run\"}") {
        println!("<- {reply}");
    }

    // malformed intake is a structured protocol error, never a crash
    for reply in svc.request("{\"op\":\"solve\",\"tenant\":") {
        println!("<- {reply}");
    }

    println!();
    for (tenant, job) in jobs {
        let out = svc.take_outcome(tenant, job).expect("job ran");
        println!(
            "{tenant}/{job}: cache {} | preprocessing {:.3} ms | device {:.3} ms | {} PCPG iters",
            if out.cache_hit { "hit " } else { "miss" },
            out.prep_s * 1e3,
            out.device_s * 1e3,
            out.iterations.unwrap_or(0),
        );
    }

    let cache = svc.cache_stats();
    println!(
        "\ncache: {} hits / {} misses, {} entr{} resident ({} KiB of {} MiB budget)",
        cache.hits,
        cache.misses,
        cache.entries,
        if cache.entries == 1 { "y" } else { "ies" },
        cache.bytes >> 10,
        cache.budget_bytes >> 20,
    );
    for (tenant, stats) in svc.tenant_stats() {
        println!(
            "tenant {tenant}: {} done, {:.3} ms device, hit ratio {:.2}",
            stats.jobs_done,
            stats.device_s * 1e3,
            stats.hit_ratio(),
        );
    }
}
