//! Quickstart: build a decomposed heat-transfer problem, assemble one
//! subdomain's Schur complement with the paper's optimized kernels, and solve
//! the whole thing with FETI.
//!
//! Run with: `cargo run --release --example quickstart`

use schur_dd::prelude::*;

fn main() {
    // 2D heat transfer on the unit square: 8x8 cells per subdomain,
    // 3x2 subdomains, redundant Lagrange-multiplier gluing.
    let problem = HeatProblem::build_2d(8, (3, 2), Gluing::Redundant);
    println!(
        "problem: {} subdomains, {} global dofs, {} Lagrange multipliers",
        problem.subdomains.len(),
        problem.n_free,
        problem.n_lambda
    );

    // --- assemble the Schur complement of one floating subdomain ---
    let sd = &problem.subdomains[1];
    let kreg = sc_feti::regularize_fixing_node(&sd.k, sd.kernel.as_deref(), sd.fixing_dof, None);
    let chol = SparseCholesky::factorize(
        &kreg,
        CholOptions {
            ordering: Ordering::NestedDissection,
            engine: Engine::Simplicial,
        },
    )
    .expect("SPD after regularization");
    let bt_perm = sd.bt.permute_rows(chol.perm());

    let cfg = ScConfig::optimized(/* gpu: */ false, /* 3D: */ false);
    let f = assemble_sc(&mut CpuExec, &chol.factor_csc(), &bt_perm, &cfg);
    println!(
        "assembled local dual operator F̃: {}x{} (dense, symmetric), F̃[0,0] = {:.4}",
        f.nrows(),
        f.ncols(),
        f[(0, 0)]
    );

    // --- solve the full problem with FETI (implicit dual operator) ---
    // options are captured once at construction; solve() takes no arguments
    let solver = FetiSolverBuilder::new()
        .options(FetiOptions::default())
        .formulation(FormulationChoice::Implicit)
        .build(&problem);
    let solution = solver.solve();
    println!(
        "FETI solve: {} PCPG iterations, converged = {}, rel. residual = {:.2e}",
        solution.stats.iterations, solution.stats.converged, solution.stats.rel_residual
    );

    // --- verify against the undecomposed direct solve ---
    let (k, rhs) = problem.assemble_global();
    let direct = SparseCholesky::factorize(&k, CholOptions::default())
        .unwrap()
        .solve(&rhs);
    let u = problem.gather_global(&solution.u_locals);
    let err = u
        .iter()
        .zip(&direct)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |u_feti - u_direct| = {err:.3e}");
    assert!(err < 1e-6, "FETI must match the direct solve");
    println!("OK");
}
