//! Hyperparameter tuning walk-through (the paper's §4.1 / Figure 5): sweep
//! the block-size parameter of factor-splitting TRSM + input-splitting SYRK
//! and watch the U-shaped trade-off between skipped zeros and kernel-launch
//! overhead on the simulated GPU.
//!
//! Run with: `cargo run --release --example tuning`

use schur_dd::prelude::*;
use schur_dd::sc_feti::SubdomainFactors;

fn main() {
    let problem = HeatProblem::build_3d(10, (3, 3, 3), Gluing::Redundant);
    let sd = &problem.subdomains[13]; // center subdomain, glued on all sides
    let factors = SubdomainFactors::build(sd, Engine::Simplicial, Ordering::NestedDissection);
    let l = factors.chol.factor_csc();
    println!(
        "subdomain: {} dofs, {} multipliers, factor nnz = {}\n",
        sd.n_dofs(),
        sd.n_lambda(),
        l.nnz()
    );

    let device = Device::new(DeviceSpec::a100(), 1);
    println!("block size | simulated GPU assembly time [ms] | launches");
    let mut best = (0usize, f64::INFINITY);
    for bs in [1usize, 5, 10, 25, 50, 100, 250, 500, 1000, 5000] {
        let cfg = ScConfig::Fixed(ScParams {
            trsm: TrsmVariant::FactorSplit {
                block: BlockParam::Size(bs),
                prune: true,
            },
            syrk: SyrkVariant::InputSplit(BlockParam::Size(bs)),
            factor_storage: FactorStorage::Dense,
            stepped_permutation: true,
        });
        device.reset();
        let kernels = GpuKernels::new(device.stream(0));
        let mut exec = GpuExec::new(&kernels);
        let f = assemble_sc(&mut exec, &l, &factors.bt_perm, &cfg);
        std::hint::black_box(&f);
        let t = device.synchronize();
        if t < best.1 {
            best = (bs, t);
        }
        println!("{bs:10} | {:10.4} | {:8}", t * 1e3, device.launches());
    }
    println!(
        "\noptimum at block size ~{} (paper Figure 5 finds ~500 on the real A100; \
         tiny blocks drown in launch overhead, huge blocks stop skipping zeros)",
        best.0
    );

    // stepped permutation ablation: how much of the dense area is actually
    // below the pivots?
    let stepped = SteppedRhs::new(&factors.bt_perm);
    println!(
        "stepped fill ratio = {:.3} (fraction of the dense TRSM work that remains; \
         1/3 would be a perfect triangle, cf. the theoretical speedup 3 of §4.3)",
        stepped.fill_ratio()
    );
}
