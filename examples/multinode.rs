//! Multi-node backend tour: build a simulated two-node cluster from the
//! node-preset registry, shard a batched Schur-complement assembly across
//! it (per-node roll-up with exchange-byte accounting in the one
//! [`sc_core::AssemblyReport`] schema), then run the full FETI solve on the
//! same topology and read how much inter-node boundary exchange the PCPG
//! applies failed to hide behind local work.
//!
//! Run with: `cargo run --release --example multinode`

use schur_dd::prelude::*;

fn main() {
    // 2D heat transfer, 4x4 subdomains — enough ranks to spread over nodes
    let problem = HeatProblem::build_2d(6, (4, 4), Gluing::Redundant);
    println!(
        "problem: {} subdomains of {} dofs",
        problem.subdomains.len(),
        problem.dofs_per_subdomain()
    );

    // --- topology construction -------------------------------------------
    // a whole node in one registry token: "node<K>x<device>" resolves to
    // the per-card spec plus the card count
    let (card, cards_per_node) =
        DeviceSpec::node_from_name("node2xa100").expect("known node preset");
    // two such nodes behind an InfiniBand-class link; `NodePool::uniform`
    // is the one-liner, `from_nodes` composes heterogeneous clusters
    let node = NodeSpec::uniform(card, cards_per_node, 4, Interconnect::infiniband());
    let pool = NodePool::from_nodes(vec![node.clone(), node]);
    println!(
        "cluster: {} nodes x {} A100s ({} streams total)\n",
        pool.n_nodes(),
        cards_per_node,
        pool.total_streams()
    );

    // --- batched assembly across the cluster ------------------------------
    // the exact production preparation pipeline, per subdomain
    let factors: Vec<_> = problem
        .subdomains
        .iter()
        .map(|sd| {
            let f = SubdomainFactors::build(sd, Engine::Simplicial, Ordering::NestedDissection);
            (f.chol.factor_csc(), f.bt_perm)
        })
        .collect();
    let items: Vec<BatchItem> = factors.iter().map(|(l, bt)| BatchItem { l, bt }).collect();

    let session = AssemblySession::new(
        Backend::multi_node(std::sync::Arc::clone(&pool)),
        ScConfig::optimized(true, false),
    );
    let result = session.assemble(&items);
    println!(
        "cluster makespan {:.3} ms ({} subdomains)",
        result.report.makespan * 1e3,
        result.report.subdomains.len()
    );
    for n in &result.report.nodes {
        println!(
            "  node {}: {:2} subdomains on devices {:?}, makespan {:.3} ms, \
             exchange {:.1} KiB ({:.1} us over the link)",
            n.node,
            n.subdomains.len(),
            n.devices,
            n.makespan * 1e3,
            n.exchange_bytes / 1024.0,
            n.exchange_seconds * 1e6
        );
    }

    // --- the same topology under the FETI solver ---------------------------
    // PCPG's dual-operator applies overlap the simulated inter-node
    // boundary exchange with local GEMVs; whatever the local work could
    // not hide surfaces as exchange stall in the solve stats
    pool.reset_all();
    let solver = FetiSolverBuilder::new()
        .options(FetiOptions::default())
        .backend(Backend::multi_node(pool))
        .formulation(FormulationChoice::Explicit)
        .assembly(ScConfig::optimized(true, false))
        .build(&problem);
    let solution = solver.solve();
    assert!(solution.stats.converged);
    println!(
        "\nFETI solve: {} PCPG iterations, rel residual {:.2e}",
        solution.stats.iterations, solution.stats.rel_residual
    );
    println!(
        "unhidden inter-node exchange stall: {:.1} us (simulated)",
        solution.stats.exchange_stall_seconds * 1e6
    );
}
