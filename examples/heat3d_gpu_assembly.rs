//! 3D heat transfer with the Schur complements assembled on the **simulated
//! GPU**: shows the simulated-A100 timeline (kernel launches, busy time,
//! makespan) for the original algorithm of [9] versus this paper's
//! sparsity-utilizing configuration.
//!
//! Run with: `cargo run --release --example heat3d_gpu_assembly`

use schur_dd::prelude::*;
use schur_dd::sc_feti::SubdomainFactors;
use std::sync::Arc;

fn main() {
    let problem = HeatProblem::build_3d(8, (2, 2, 2), Gluing::Redundant);
    println!(
        "3D heat transfer: {} subdomains of {} dofs, {} multipliers",
        problem.subdomains.len(),
        problem.dofs_per_subdomain(),
        problem.n_lambda
    );

    // factorize every subdomain on the CPU (the paper's CHOLMOD role)
    let factors: Vec<SubdomainFactors> = problem
        .subdomains
        .iter()
        .map(|sd| SubdomainFactors::build(sd, Engine::Simplicial, Ordering::NestedDissection))
        .collect();

    let device = Device::new(DeviceSpec::a100(), 4);
    let run = |label: &str, cfg: &ScConfig| -> f64 {
        device.reset();
        for (i, f) in factors.iter().enumerate() {
            let kernels = GpuKernels::new(device.stream(i % device.n_streams()));
            let l = f.chol.factor_csc();
            kernels.upload_bytes(16 * l.nnz() + 16 * f.bt_perm.nnz());
            let mut exec = GpuExec::new(&kernels);
            let f_mat = assemble_sc(&mut exec, &l, &f.bt_perm, cfg);
            std::hint::black_box(&f_mat);
        }
        let makespan = device.synchronize();
        println!(
            "{label:28} simulated makespan {:9.3} ms, {:5} kernel launches, \
             device busy {:9.3} ms",
            makespan * 1e3,
            device.launches(),
            device.busy_seconds() * 1e3
        );
        makespan
    };

    let t_orig = run(
        "original (plain kernels)",
        &ScConfig::original(FactorStorage::Dense),
    );
    let t_opt = run("optimized (stepped)", &ScConfig::optimized(true, true));
    println!(
        "\nsimulated GPU-section speedup: {:.2}x (paper: up to 5.1x on large subdomains)",
        t_orig / t_opt
    );

    // the assembled operators are bit-identical to a CPU assembly, so the
    // FETI solve works off the simulated device transparently — here through
    // the §4.4 scheduler (cost-model LPT + arena admission) with per-knob
    // auto-selection:
    let dev: Arc<Device> = Device::new(DeviceSpec::a100(), 4);
    let solver = FetiSolverBuilder::new()
        .backend(Backend::gpu(Arc::clone(&dev)))
        .formulation(FormulationChoice::Explicit)
        .assembly(ScConfig::Auto)
        .build(&problem);
    let solution = solver.solve();
    println!(
        "FETI solve with GPU-assembled dual operator: {} iterations, residual {:.1e}",
        solution.stats.iterations, solution.stats.rel_residual
    );
    if let Some(report) = solver.report() {
        println!(
            "scheduled assembly: device makespan {:.3} ms, arena peak {:.1} KiB",
            report.makespan * 1e3,
            report.temp_high_water() as f64 / 1024.0
        );
        for device in &report.devices {
            for lane in device.stream_lanes() {
                for entry in &lane.spans {
                    println!(
                        "  subdomain {:2} -> stream {} @ [{:8.3}, {:8.3}] us",
                        entry.index,
                        lane.stream,
                        entry.span.start * 1e6,
                        entry.span.end * 1e6
                    );
                }
            }
        }
    }
}
