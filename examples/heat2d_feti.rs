//! 2D heat-transfer FETI solve comparing the implicit and explicit dual
//! operators: same solution, different preprocessing/iteration trade-off —
//! the core tension the paper's optimization resolves.
//!
//! Run with: `cargo run --release --example heat2d_feti`

use schur_dd::prelude::*;
use std::time::Instant;

fn main() {
    let problem = HeatProblem::build_2d(16, (4, 4), Gluing::Redundant);
    println!(
        "2D heat transfer: {} subdomains of {} dofs, {} multipliers\n",
        problem.subdomains.len(),
        problem.dofs_per_subdomain(),
        problem.n_lambda
    );

    let mut reference: Option<Vec<f64>> = None;
    for (name, formulation, cfg) in [
        ("implicit", FormulationChoice::Implicit, ScConfig::Auto),
        (
            "explicit (original kernels)",
            FormulationChoice::Explicit,
            ScConfig::original(FactorStorage::Sparse),
        ),
        (
            "explicit (stepped/optimized)",
            FormulationChoice::Explicit,
            ScConfig::optimized(false, false),
        ),
    ] {
        let t0 = Instant::now();
        let solver = FetiSolverBuilder::new()
            .backend(Backend::cpu())
            .formulation(formulation)
            .assembly(cfg)
            .build(&problem);
        let preprocess = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let solution = solver.solve();
        let iterate = t1.elapsed().as_secs_f64();
        println!(
            "{name:32} preprocessing {preprocess:8.4}s, solve {iterate:8.4}s, \
             {} iterations, residual {:.1e}",
            solution.stats.iterations, solution.stats.rel_residual
        );
        let u = problem.gather_global(&solution.u_locals);
        match &reference {
            None => reference = Some(u),
            Some(r) => {
                let err = u
                    .iter()
                    .zip(r)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                assert!(err < 1e-6, "solutions must agree across dual modes: {err}");
            }
        }
    }
    println!("\nall three dual-operator modes produced the same temperature field.");
}
