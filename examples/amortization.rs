//! Amortization-point explorer (the paper's Figure 10 in miniature): when
//! does paying for the explicit Schur complement assembly beat the implicit
//! dual operator?
//!
//! Run with: `cargo run --release --example amortization`

use schur_dd::prelude::*;

fn main() {
    let problem = HeatProblem::build_3d(6, (2, 2, 1), Gluing::Redundant);
    let device = Device::new(DeviceSpec::a100(), 4);
    println!(
        "3D problem: {} subdomains of {} dofs\n",
        problem.subdomains.len(),
        problem.dofs_per_subdomain()
    );

    // preprocessing + per-iteration costs for the implicit CPU operator and
    // the explicit simulated-GPU operator
    let implicit = preprocess_approach(&problem, DualOpApproach::ImplCholmod, None);
    let impl_apply =
        sc_feti::measure_apply_cost(&problem, &implicit, DualOpApproach::ImplCholmod, None, 5);
    let explicit = preprocess_approach(&problem, DualOpApproach::ExplGpuOpt, Some(&device));
    let expl_apply = sc_feti::measure_apply_cost(
        &problem,
        &explicit,
        DualOpApproach::ExplGpuOpt,
        Some(&device),
        5,
    );

    println!(
        "implicit:  preprocessing {:9.3} ms, apply {:9.4} ms/iter (measured CPU)",
        implicit.report.total_s() * 1e3,
        impl_apply.per_iteration_s * 1e3
    );
    println!(
        "explicit:  preprocessing {:9.3} ms, apply {:9.4} ms/iter (GPU simulated)",
        explicit.report.total_s() * 1e3,
        expl_apply.per_iteration_s * 1e3
    );

    println!("\niterations | implicit total | explicit total | winner");
    let mut amortized_at = None;
    for k in [1usize, 2, 5, 10, 20, 50, 100, 500, 1000] {
        let ti = implicit.report.total_s() + k as f64 * impl_apply.per_iteration_s;
        let te = explicit.report.total_s() + k as f64 * expl_apply.per_iteration_s;
        let winner = if te < ti { "explicit" } else { "implicit" };
        if te < ti && amortized_at.is_none() {
            amortized_at = Some(k);
        }
        println!(
            "{k:10} | {:12.3} ms | {:12.3} ms | {winner}",
            ti * 1e3,
            te * 1e3
        );
    }
    match amortized_at {
        Some(k) => println!(
            "\nexplicit GPU assembly amortizes within {k} iterations on this grid \
             (paper: ~10 for 3D subdomains)"
        ),
        None => println!("\nexplicit did not amortize within 1000 iterations at this size"),
    }

    // --- the other amortization axis: many right-hand sides --------------
    // preprocessing (factorization + explicit assembly) happens once per
    // FetiSolver handle; solve_rhs() reuses it for every new load case
    let n_rhs = 8;
    // the one-time preprocessing counts against the reuse side, like the
    // gated headline row: one build + N solves vs N × (build + solve)
    let t0 = std::time::Instant::now();
    let solver = FetiSolverBuilder::new()
        .backend(Backend::cpu())
        .formulation(FormulationChoice::Explicit)
        .assembly(ScConfig::optimized(false, true))
        .build(&problem);
    for k in 0..n_rhs {
        let loads: Vec<Vec<f64>> = problem
            .subdomains
            .iter()
            .map(|sd| sd.f.iter().map(|v| v * (1.0 + 0.1 * k as f64)).collect())
            .collect();
        let sol = solver.solve_rhs(&loads);
        assert!(sol.stats.converged);
    }
    let reuse = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    for k in 0..n_rhs {
        let fresh = FetiSolverBuilder::new()
            .backend(Backend::cpu())
            .formulation(FormulationChoice::Explicit)
            .assembly(ScConfig::optimized(false, true))
            .build(&problem);
        let loads: Vec<Vec<f64>> = problem
            .subdomains
            .iter()
            .map(|sd| sd.f.iter().map(|v| v * (1.0 + 0.1 * k as f64)).collect())
            .collect();
        let sol = fresh.solve_rhs(&loads);
        assert!(sol.stats.converged);
    }
    let naive = t1.elapsed().as_secs_f64();
    println!(
        "\nmulti-RHS reuse over {n_rhs} load cases: one preprocessed handle {:.3} s \
         vs re-preprocessing every solve {:.3} s ({:.1}x)",
        reuse,
        naive,
        naive / reuse
    );
}
