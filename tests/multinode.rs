//! Property-based tests of the multi-node (three-level) partition
//! invariants: every subdomain lands on exactly one node, no device's
//! simulated arena exceeds its own node's capacity, adding nodes never
//! grows the makespan, the sharded numerics are bitwise identical to the
//! sequential CPU reference — and the 1-node `Backend::multi_node` path is
//! bitwise the `Backend::cluster` path on the same hardware (the
//! compatibility pin of the hierarchical refactor).

use proptest::prelude::*;
use schur_dd::prelude::*;
use schur_dd::sc_sparse::{Coo, Csc};

/// A cluster of SPD subdomains with sizes drawn per subdomain — factorized
/// like the production pipeline (`(L, B̃ᵀ_permuted)` pairs).
fn cluster_strategy() -> impl Strategy<Value = Vec<(Csc, Csc)>> {
    proptest::collection::vec((3usize..9, 0usize..10, 0u64..1000), 4..12).prop_map(|subs| {
        subs.into_iter()
            .map(|(nx, m, seed)| {
                let n = nx * nx;
                let idx = |x: usize, y: usize| y * nx + x;
                let mut c = Coo::new(n, n);
                for y in 0..nx {
                    for x in 0..nx {
                        let v = idx(x, y);
                        c.push(v, v, 4.05 + (seed % 7) as f64 * 0.01);
                        if x > 0 {
                            c.push(v, idx(x - 1, y), -1.0);
                        }
                        if x + 1 < nx {
                            c.push(v, idx(x + 1, y), -1.0);
                        }
                        if y > 0 {
                            c.push(v, idx(x, y - 1), -1.0);
                        }
                        if y + 1 < nx {
                            c.push(v, idx(x, y + 1), -1.0);
                        }
                    }
                }
                let k = c.to_csc();
                let mut b = Coo::new(n, m);
                for j in 0..m {
                    let d = ((j as u64 * 7919 + seed * 131) % n as u64) as usize;
                    b.push(
                        d,
                        j,
                        if (j as u64 + seed).is_multiple_of(2) {
                            1.0
                        } else {
                            -1.0
                        },
                    );
                }
                let chol = SparseCholesky::factorize(&k, CholOptions::default()).unwrap();
                (chol.factor_csc(), b.to_csc().permute_rows(chol.perm()))
            })
            .collect()
    })
}

/// A memory-tight spec so arena admission binds inside each device.
fn tight_spec() -> DeviceSpec {
    DeviceSpec {
        memory_bytes: 128 * 1024, // 64 KiB arena
        concurrency: 2,
        ..DeviceSpec::a100()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn multi_node_partition_invariants_hold(
        data in cluster_strategy(),
        n_nodes in 1usize..4,
        devices_per_node in 1usize..3,
        n_streams in 1usize..3,
    ) {
        let items: Vec<BatchItem<'_>> =
            data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let pool = NodePool::uniform(
            tight_spec(),
            n_nodes,
            devices_per_node,
            n_streams,
            Interconnect::infiniband(),
        );
        let cfg = ScConfig::optimized(true, false);
        let res = AssemblySession::new(
            Backend::multi_node(std::sync::Arc::clone(&pool)),
            cfg,
        )
        .assemble(&items);
        let report = &res.report;

        // --- every subdomain placed on exactly one node
        prop_assert_eq!(report.nodes.len(), n_nodes);
        let mut placed: Vec<usize> = report
            .nodes
            .iter()
            .flat_map(|n| n.subdomains.iter().copied())
            .collect();
        placed.sort_unstable();
        prop_assert_eq!(placed, (0..items.len()).collect::<Vec<_>>());
        prop_assert_eq!(report.subdomains.len(), items.len());
        for t in &report.subdomains {
            let n = t.node.expect("multi-node stamps a node on every subdomain");
            prop_assert!(report.nodes[n].subdomains.contains(&t.index));
            let d = t.device.expect("multi-node places every subdomain");
            prop_assert!(report.nodes[n].devices.contains(&d));
        }

        // --- no device's simulated arena exceeds its own node's capacity
        // (global device numbering is flat across nodes, node-major)
        for rep in &report.devices {
            let node = rep.device / devices_per_node;
            let local = rep.device % devices_per_node;
            let capacity = pool.node(node).pool.device(local).temp_pool().capacity();
            prop_assert!(
                rep.temp_high_water <= capacity,
                "device {}: arena high water {} > capacity {capacity}",
                rep.device,
                rep.temp_high_water
            );
        }

        // --- single-node clusters exchange nothing; larger ones account
        //     the priced inter-node traffic per node
        for n in &report.nodes {
            if n_nodes == 1 {
                // exact zeros by construction: the single-node driver never
                // prices an exchange  sc-analyze: allow(float-eq)
                prop_assert!(n.exchange_bytes == 0.0 && n.exchange_seconds == 0.0);
            } else if !n.subdomains.is_empty() {
                prop_assert!(n.exchange_seconds > 0.0);
            }
        }

        // --- numerics: bitwise equal to the sequential CPU reference
        for (i, (l, bt)) in data.iter().enumerate() {
            let seq = assemble_sc(&mut CpuExec, l, bt, &cfg);
            prop_assert_eq!(&res.f[i], &seq, "subdomain {} deviates", i);
        }
    }

    #[test]
    fn more_nodes_never_grow_the_makespan(
        data in cluster_strategy(),
        n_streams in 1usize..3,
    ) {
        // ideal link: isolates partition quality from exchange pricing
        let items: Vec<BatchItem<'_>> =
            data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let cfg = ScConfig::optimized(true, false);
        let makespan = |n_nodes: usize| {
            let pool =
                NodePool::uniform(tight_spec(), n_nodes, 1, n_streams, Interconnect::ideal());
            AssemblySession::new(Backend::multi_node(pool), cfg)
                .assemble(&items)
                .report
                .makespan
        };
        let m1 = makespan(1);
        let m4 = makespan(4);
        prop_assert!(
            m4 <= m1 * (1.0 + 1e-12) + 1e-8,
            "4-node makespan {m4} exceeds the 1-node makespan {m1}"
        );
    }

    /// The compatibility pin of the hierarchical refactor: a 1-node pool
    /// under `Backend::multi_node` must behave **bitwise** like
    /// `Backend::cluster` over the same devices — identical F̃ matrices,
    /// identical per-device placement, identical simulated makespan.
    #[test]
    fn one_node_multi_node_is_bitwise_the_cluster_backend(
        data in cluster_strategy(),
        n_devices in 1usize..4,
        n_streams in 1usize..3,
    ) {
        let items: Vec<BatchItem<'_>> =
            data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let cfg = ScConfig::optimized(true, false);
        let cres = AssemblySession::new(
            Backend::cluster(DevicePool::uniform(tight_spec(), n_devices, n_streams)),
            cfg,
        )
        .assemble(&items);
        let npool = NodePool::uniform(
            tight_spec(),
            1,
            n_devices,
            n_streams,
            Interconnect::infiniband(),
        );
        let nres = AssemblySession::new(Backend::multi_node(npool), cfg).assemble(&items);
        for i in 0..items.len() {
            prop_assert_eq!(&cres.f[i], &nres.f[i], "subdomain {} deviates", i);
        }
        prop_assert_eq!(
            cres.report.makespan.to_bits(),
            nres.report.makespan.to_bits(),
            "simulated makespan deviates: {} vs {}",
            cres.report.makespan,
            nres.report.makespan
        );
        for (cd, nd) in cres.report.devices.iter().zip(nres.report.devices.iter()) {
            prop_assert_eq!(cd.device, nd.device);
            prop_assert_eq!(&cd.subdomains, &nd.subdomains, "placement deviates");
        }
    }
}
