//! API-surface snapshot of the unified `Backend` + `AssemblySession` +
//! `FetiSolverBuilder` redesign:
//!
//! 1. **compile-time** — every `schur_dd::prelude` re-export exists and the
//!    deprecated free-function shims keep their exact signatures (the
//!    function-pointer bindings below fail to compile on any drift);
//! 2. **runtime** — the deprecated shims (`assemble_sc_batch*`, `DualMode`
//!    construction, `FetiSolver::solve_with`) produce **bitwise identical**
//!    `F̃` / operator applications to the new `AssemblySession` /
//!    `FetiSolverBuilder` paths, proptested over mixed workloads.
//!
//! Together with `crates/feti/src/compat.rs`, this file is the only place
//! allowed to `allow(deprecated)` (enforced by the CI deprecation-budget
//! check).
#![allow(deprecated)]

use proptest::prelude::*;
use schur_dd::prelude::*;
use schur_dd::sc_sparse::Coo;
use std::sync::Arc;

/// The prelude's new-surface items, referenced so a dropped re-export is a
/// compile error; the deprecated shims are pinned by exact signature.
#[test]
fn prelude_surface_is_complete() {
    // new unified surface — type positions
    fn _session_types(
        _: &AssemblySession,
        _: &AssemblyResult,
        _: &AssemblyReport,
        _: &Backend,
        _: &DeviceReport,
        _: &StreamLane,
        _: &HybridSummary,
    ) {
    }
    fn _solver_types(_: &FetiSolverBuilder, _: &FormulationChoice, _: &dyn BatchSource) {}
    // IntoBatchSource + LazyBatch usable through the prelude
    fn _generic<S: IntoBatchSource>(_: S) {}
    fn _lazy<'a>(items: &'a [(Csc, Csc)]) -> impl BatchSource + 'a {
        LazyBatch::new(
            items,
            |_, (l, _): &(Csc, Csc)| std::borrow::Cow::Borrowed(l),
            |(_, bt)| bt,
        )
    }
    // deprecated shims keep their signatures for one release
    let _: fn(&[BatchItem<'_>], &ScConfig) -> BatchResult = assemble_sc_batch;
    let _: fn(&[BatchItem<'_>], &ScConfig, &Arc<Device>) -> BatchResult = assemble_sc_batch_gpu;
    let _: fn(&[BatchItem<'_>], &ScConfig, &Arc<Device>, &ScheduleOptions) -> BatchResult =
        assemble_sc_batch_scheduled;
    let _: fn(&[BatchItem<'_>], &ScConfig, &DevicePool, &ClusterOptions) -> ClusterResult =
        assemble_sc_batch_cluster;
    // legacy report types still reachable (they back the deprecated
    // accessors and live nested inside AssemblyReport conversions)
    fn _legacy(_: &BatchReport, _: &ClusterReport, _: &SubdomainTiming, _: &HybridReport) {}
    // options structs carry the unified with_* builder surface
    let _ = ScheduleOptions::default().with_policy(StreamPolicy::RoundRobin);
    let _ = ClusterOptions::default().with_ready_at(Vec::new());
    let _ = HybridPlanOptions::default()
        .with_iters(1.0)
        .with_allow_explicit_cpu(true)
        .with_force(HybridForce::Auto);
    let _ = FetiOptions::default()
        .with_engine(Engine::Simplicial)
        .with_ordering(Ordering::Natural)
        .with_preconditioner(sc_feti_preconditioner())
        .with_tol(1e-8)
        .with_max_iter(10);
    let _ = HybridOptions::default()
        .with_plan(HybridPlanOptions::default())
        .with_cluster(ClusterOptions::default());
    let _ = [
        Backend::cpu(),
        Backend::cpu_with_threads(2),
        Backend::gpu(Device::new(DeviceSpec::a100(), 1)),
        Backend::cluster(DevicePool::uniform(DeviceSpec::a100(), 1, 1)),
        Backend::hybrid(DevicePool::uniform(DeviceSpec::a100(), 1, 1)),
    ];
    // mixed-precision surface: the Precision knob on Backend and the
    // builder, the F32Refined payload shape, and the refinement stats
    fn _precision_types(_: &Precision, _: &RefinementStats) {}
    let b = Backend::cpu().precision(Precision::F32Refined {
        refine_tol: 1e-10,
        max_refine: 8,
    });
    assert!(b.precision.is_f32());
    assert_eq!(Backend::cpu().precision, Precision::F64);
    assert_eq!(Precision::default(), Precision::F64);
    let _: fn(FetiSolverBuilder, Precision) -> FetiSolverBuilder = FetiSolverBuilder::precision;
    let _: fn(&FetiSolution) -> Option<RefinementStats> = |s| s.refinement;
}

fn sc_feti_preconditioner() -> schur_dd::sc_feti::Preconditioner {
    schur_dd::sc_feti::Preconditioner::None
}

/// A mixed workload: subdomain sizes and multiplier counts drawn per
/// subdomain, factorized like the production pipeline.
fn mixed_workload() -> impl Strategy<Value = Vec<(Csc, Csc)>> {
    proptest::collection::vec((3usize..8, 0usize..9, 0u64..1000), 2..8).prop_map(|subs| {
        subs.into_iter()
            .map(|(nx, m, seed)| {
                let n = nx * nx;
                let idx = |x: usize, y: usize| y * nx + x;
                let mut c = Coo::new(n, n);
                for y in 0..nx {
                    for x in 0..nx {
                        let v = idx(x, y);
                        c.push(v, v, 4.05 + (seed % 5) as f64 * 0.01);
                        if x > 0 {
                            c.push(v, idx(x - 1, y), -1.0);
                        }
                        if x + 1 < nx {
                            c.push(v, idx(x + 1, y), -1.0);
                        }
                        if y > 0 {
                            c.push(v, idx(x, y - 1), -1.0);
                        }
                        if y + 1 < nx {
                            c.push(v, idx(x, y + 1), -1.0);
                        }
                    }
                }
                let k = c.to_csc();
                let mut b = Coo::new(n, m);
                for j in 0..m {
                    let d = ((j as u64 * 7919 + seed * 131) % n as u64) as usize;
                    b.push(
                        d,
                        j,
                        if (j as u64 + seed).is_multiple_of(2) {
                            1.0
                        } else {
                            -1.0
                        },
                    );
                }
                let chol = SparseCholesky::factorize(&k, CholOptions::default()).unwrap();
                (chol.factor_csc(), b.to_csc().permute_rows(chol.perm()))
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every deprecated free-function driver produces bitwise-identical F̃
    /// to the AssemblySession path on the corresponding Backend, over mixed
    /// workloads and both fixed and auto configurations.
    #[test]
    fn deprecated_shims_are_bitwise_the_session_paths(
        data in mixed_workload(),
        auto_cfg in prop::bool::ANY,
        n_streams in 1usize..4,
        n_devices in 1usize..4,
    ) {
        let items: Vec<BatchItem<'_>> =
            data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let cfg = if auto_cfg { ScConfig::Auto } else { ScConfig::optimized(true, false) };

        // CPU
        let old = assemble_sc_batch(&items, &cfg);
        let new = AssemblySession::new(Backend::cpu(), cfg).assemble(&items);
        for i in 0..items.len() {
            prop_assert_eq!(&old.f[i], &new.f[i], "cpu shim deviates at {}", i);
        }

        // GPU: live round-robin shim vs the scheduled session (any policy)
        let dev_old = Device::new(DeviceSpec::a100(), n_streams);
        let old = assemble_sc_batch_gpu(&items, &cfg, &dev_old);
        let dev_new = Device::new(DeviceSpec::a100(), n_streams);
        let gpu = AssemblySession::new(Backend::gpu(dev_new), cfg).assemble(&items);
        for i in 0..items.len() {
            prop_assert_eq!(&old.f[i], &gpu.f[i], "gpu shim deviates at {}", i);
        }

        // scheduled shim vs the Gpu backend with identical options
        let opts = ScheduleOptions::default().with_policy(StreamPolicy::RoundRobin);
        let dev_old = Device::new(DeviceSpec::a100(), n_streams);
        let old = assemble_sc_batch_scheduled(&items, &cfg, &dev_old, &opts);
        let dev_new = Device::new(DeviceSpec::a100(), n_streams);
        let new = AssemblySession::new(
            Backend::gpu_with(std::sync::Arc::clone(&dev_new), opts),
            cfg,
        )
        .assemble(&items);
        prop_assert_eq!(dev_old.synchronize(), dev_new.synchronize(),
            "shim and session must replay the same simulated timeline");
        for i in 0..items.len() {
            prop_assert_eq!(&old.f[i], &new.f[i], "scheduled shim deviates at {}", i);
        }

        // cluster shim vs the Cluster backend
        let pool_old = DevicePool::uniform(DeviceSpec::a100(), n_devices, n_streams);
        let old = assemble_sc_batch_cluster(&items, &cfg, &pool_old, &ClusterOptions::default());
        let pool_new = DevicePool::uniform(DeviceSpec::a100(), n_devices, n_streams);
        let new = AssemblySession::new(Backend::cluster(pool_new), cfg).assemble(&items);
        prop_assert_eq!(old.report.makespan, new.report.makespan);
        for i in 0..items.len() {
            prop_assert_eq!(&old.f[i], &new.f[i], "cluster shim deviates at {}", i);
        }
    }
}

/// Deprecated `DualMode` construction still compiles (with a warning) and
/// the resulting solver applies the dual operator bitwise like the
/// builder-built one; `solve_with` matches `solve()` bitwise.
#[test]
fn dual_mode_shims_are_bitwise_the_builder_paths() {
    let p = HeatProblem::build_2d(4, (2, 2), Gluing::Redundant);
    let dev = Device::new(DeviceSpec::a100(), 2);
    let pool = DevicePool::uniform(DeviceSpec::a100(), 2, 2);
    let cfg = ScConfig::optimized(true, false);
    let lam: Vec<f64> = (0..p.n_lambda).map(|i| (i as f64 * 0.29).sin()).collect();

    let cases: Vec<(DualMode, Backend, FormulationChoice)> = vec![
        (
            DualMode::Implicit,
            Backend::cpu(),
            FormulationChoice::Implicit,
        ),
        (
            DualMode::ExplicitCpu(cfg),
            Backend::cpu(),
            FormulationChoice::Explicit,
        ),
        (
            DualMode::ExplicitGpu(cfg, Arc::clone(&dev)),
            Backend::gpu(Device::new(DeviceSpec::a100(), 2)),
            FormulationChoice::Explicit,
        ),
        (
            DualMode::ExplicitGpuScheduled(cfg, Arc::clone(&dev), ScheduleOptions::default()),
            Backend::gpu(Device::new(DeviceSpec::a100(), 2)),
            FormulationChoice::Explicit,
        ),
        (
            DualMode::ExplicitGpuCluster {
                cfg,
                pool: Arc::clone(&pool),
                opts: ClusterOptions::default(),
            },
            Backend::cluster(DevicePool::uniform(DeviceSpec::a100(), 2, 2)),
            FormulationChoice::Explicit,
        ),
        (
            DualMode::Hybrid {
                cfg,
                pool: Arc::clone(&pool),
                opts: HybridOptions::default(),
            },
            Backend::cluster(DevicePool::uniform(DeviceSpec::a100(), 2, 2)),
            FormulationChoice::Auto(HybridPlanOptions::default()),
        ),
    ];
    for (k, (dual, backend, formulation)) in cases.into_iter().enumerate() {
        let opts = FetiOptions {
            dual,
            ..Default::default()
        };
        let legacy = FetiSolver::new(&p, &opts);
        let modern = FetiSolverBuilder::new()
            .backend(backend)
            .formulation(formulation)
            .assembly(cfg)
            .build(&p);
        assert_eq!(
            legacy.apply_f(&lam),
            modern.apply_f(&lam),
            "case {k}: legacy DualMode apply deviates from the builder path"
        );
        // solve_with (deprecated) == solve() bitwise on the same handle
        let a = legacy.solve_with(&opts);
        let b = legacy.solve();
        assert_eq!(a.lambda, b.lambda, "case {k}: solve_with deviates");
        assert_eq!(a.u_locals, b.u_locals, "case {k}");
        // and both entry points solve the problem
        assert!(b.stats.converged, "case {k}: {:?}", b.stats);
        let c = modern.solve();
        assert_eq!(
            p.gather_global(&b.u_locals),
            p.gather_global(&c.u_locals),
            "case {k}: legacy and modern solutions deviate"
        );
    }
}

/// The deprecated report accessors stay consistent with the unified report.
#[test]
fn legacy_report_accessors_match_the_unified_report() {
    let p = HeatProblem::build_3d(2, (2, 2, 1), Gluing::Redundant);
    let pool = DevicePool::uniform(DeviceSpec::a100(), 2, 2);
    let solver = FetiSolverBuilder::new()
        .backend(Backend::cluster(pool))
        .formulation(FormulationChoice::Explicit)
        .assembly(ScConfig::optimized(true, true))
        .build(&p);
    let unified = solver.report().expect("explicit mode reports");
    let batch = solver.assembly_report().expect("legacy accessor populated");
    assert_eq!(batch.timings.len(), unified.subdomains.len());
    assert_eq!(batch.device_seconds, unified.makespan);
    let cluster = solver.cluster_report().expect("legacy cluster populated");
    assert_eq!(cluster.n_devices(), unified.devices.len());
    assert_eq!(cluster.makespan, unified.makespan);
}
