//! End-to-end integration tests: the full FETI pipeline against direct
//! solves, across dual-operator modes, engines, orderings, and dimensions.

use schur_dd::prelude::*;
use std::sync::Arc;

fn direct(problem: &HeatProblem) -> Vec<f64> {
    let (k, f) = problem.assemble_global();
    SparseCholesky::factorize(&k, CholOptions::default())
        .unwrap()
        .solve(&f)
}

fn check(problem: &HeatProblem, opts: &FetiOptions) {
    let solver = FetiSolver::new(problem, opts);
    let sol = solver.solve(opts);
    assert!(
        sol.stats.converged,
        "PCPG did not converge: {:?}",
        sol.stats
    );
    let u = problem.gather_global(&sol.u_locals);
    let d = direct(problem);
    let scale = d.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
    for i in 0..u.len() {
        assert!(
            (u[i] - d[i]).abs() < 1e-6 * scale,
            "dof {i}: {} vs {}",
            u[i],
            d[i]
        );
    }
}

#[test]
fn implicit_2d_various_decompositions() {
    for (c, subs) in [(3, (2, 2)), (4, (3, 2)), (5, (1, 3))] {
        let p = HeatProblem::build_2d(c, subs, Gluing::Redundant);
        check(&p, &FetiOptions::default());
    }
}

#[test]
fn implicit_3d() {
    let p = HeatProblem::build_3d(3, (2, 2, 2), Gluing::Redundant);
    check(&p, &FetiOptions::default());
}

#[test]
fn explicit_cpu_all_configs_2d() {
    let p = HeatProblem::build_2d(4, (2, 2), Gluing::Redundant);
    for cfg in [
        ScConfig::original(FactorStorage::Sparse),
        ScConfig::original(FactorStorage::Dense),
        ScConfig::optimized(false, false),
        ScConfig::optimized(false, true),
    ] {
        let opts = FetiOptions {
            dual: DualMode::ExplicitCpu(cfg),
            ..Default::default()
        };
        check(&p, &opts);
    }
}

#[test]
fn explicit_gpu_3d_with_multiple_streams() {
    let p = HeatProblem::build_3d(3, (2, 1, 2), Gluing::Redundant);
    let dev = Device::new(DeviceSpec::a100(), 3);
    let opts = FetiOptions {
        dual: DualMode::ExplicitGpu(ScConfig::optimized(true, true), Arc::clone(&dev)),
        ..Default::default()
    };
    check(&p, &opts);
    assert!(dev.launches() > 0);
}

#[test]
fn supernodal_engine_full_pipeline() {
    let p = HeatProblem::build_2d(5, (2, 2), Gluing::Redundant);
    let opts = FetiOptions {
        engine: Engine::Supernodal,
        dual: DualMode::ExplicitCpu(ScConfig::optimized(false, false)),
        ..Default::default()
    };
    check(&p, &opts);
}

#[test]
fn chain_gluing_full_pipeline() {
    let p = HeatProblem::build_2d(4, (3, 2), Gluing::Chain);
    check(&p, &FetiOptions::default());
}

#[test]
fn rcm_and_natural_orderings_work_end_to_end() {
    let p = HeatProblem::build_2d(3, (2, 2), Gluing::Redundant);
    for ordering in [Ordering::Rcm, Ordering::Natural, Ordering::MinimumDegree] {
        let opts = FetiOptions {
            ordering,
            dual: DualMode::ExplicitCpu(ScConfig::optimized(false, false)),
            ..Default::default()
        };
        check(&p, &opts);
    }
}

#[test]
fn all_dual_approaches_are_interchangeable() {
    // all eight Table-2 approaches produce dual operators that PCPG can use
    // and that lead to the same primal solution
    let p = HeatProblem::build_2d(3, (2, 2), Gluing::Redundant);
    let d = direct(&p);
    let scale = d.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
    let device = Device::new(DeviceSpec::a100(), 2);
    for approach in DualOpApproach::ALL {
        // route through the generic FETI solver by translating the approach
        // to a DualMode where possible; approaches with bespoke assembly
        // (ExplMkl / ExplHybrid) are covered by their own apply-equivalence
        // test in sc-feti, so here we spot-check the solver-compatible ones.
        let dual = match approach {
            DualOpApproach::ImplMkl | DualOpApproach::ImplCholmod => DualMode::Implicit,
            DualOpApproach::ExplCholmod => {
                DualMode::ExplicitCpu(ScConfig::original(FactorStorage::Sparse))
            }
            DualOpApproach::ExplCpuOpt => DualMode::ExplicitCpu(ScConfig::optimized(false, false)),
            DualOpApproach::ExplCuda => DualMode::ExplicitGpu(
                ScConfig::original(FactorStorage::Sparse),
                Arc::clone(&device),
            ),
            DualOpApproach::ExplGpuOpt => {
                DualMode::ExplicitGpu(ScConfig::optimized(true, false), Arc::clone(&device))
            }
            DualOpApproach::ExplMkl | DualOpApproach::ExplHybrid => continue,
        };
        let opts = FetiOptions {
            dual,
            ..Default::default()
        };
        let solver = FetiSolver::new(&p, &opts);
        let sol = solver.solve(&opts);
        assert!(sol.stats.converged, "{approach:?}");
        let u = p.gather_global(&sol.u_locals);
        for i in 0..u.len() {
            assert!(
                (u[i] - d[i]).abs() < 1e-6 * scale,
                "{approach:?} deviates at dof {i}"
            );
        }
    }
}

#[test]
fn solution_is_physical() {
    // unit source, zero Dirichlet at x=0: temperature must be positive and
    // increase monotonically with x along the centerline
    let p = HeatProblem::build_2d(6, (2, 1), Gluing::Redundant);
    let opts = FetiOptions::default();
    let solver = FetiSolver::new(&p, &opts);
    let sol = solver.solve(&opts);
    let u = p.gather_global(&sol.u_locals);
    assert!(u.iter().all(|&v| v > 0.0), "temperature must be positive");
}
