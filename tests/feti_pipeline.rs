//! End-to-end integration tests: the full FETI pipeline against direct
//! solves, across formulations, backends, engines, orderings, and
//! dimensions — all through the composable `FetiSolverBuilder` surface.

use schur_dd::prelude::*;
use std::sync::Arc;

fn direct(problem: &HeatProblem) -> Vec<f64> {
    let (k, f) = problem.assemble_global();
    SparseCholesky::factorize(&k, CholOptions::default())
        .unwrap()
        .solve(&f)
}

fn check(problem: &HeatProblem, solver: &FetiSolver<'_>) {
    let sol = solver.solve();
    assert!(
        sol.stats.converged,
        "PCPG did not converge: {:?}",
        sol.stats
    );
    let u = problem.gather_global(&sol.u_locals);
    let d = direct(problem);
    let scale = d.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
    for i in 0..u.len() {
        assert!(
            (u[i] - d[i]).abs() < 1e-6 * scale,
            "dof {i}: {} vs {}",
            u[i],
            d[i]
        );
    }
}

fn explicit<'p>(problem: &'p HeatProblem, backend: Backend, cfg: ScConfig) -> FetiSolver<'p> {
    FetiSolverBuilder::new()
        .backend(backend)
        .formulation(FormulationChoice::Explicit)
        .assembly(cfg)
        .build(problem)
}

#[test]
fn implicit_2d_various_decompositions() {
    for (c, subs) in [(3, (2, 2)), (4, (3, 2)), (5, (1, 3))] {
        let p = HeatProblem::build_2d(c, subs, Gluing::Redundant);
        check(&p, &FetiSolverBuilder::new().build(&p));
    }
}

#[test]
fn implicit_3d() {
    let p = HeatProblem::build_3d(3, (2, 2, 2), Gluing::Redundant);
    check(&p, &FetiSolverBuilder::new().build(&p));
}

#[test]
fn explicit_cpu_all_configs_2d() {
    let p = HeatProblem::build_2d(4, (2, 2), Gluing::Redundant);
    for cfg in [
        ScConfig::original(FactorStorage::Sparse),
        ScConfig::original(FactorStorage::Dense),
        ScConfig::optimized(false, false),
        ScConfig::optimized(false, true),
    ] {
        check(&p, &explicit(&p, Backend::cpu(), cfg));
    }
}

#[test]
fn explicit_gpu_3d_with_multiple_streams() {
    let p = HeatProblem::build_3d(3, (2, 1, 2), Gluing::Redundant);
    let dev = Device::new(DeviceSpec::a100(), 3);
    let solver = explicit(
        &p,
        Backend::gpu(Arc::clone(&dev)),
        ScConfig::optimized(true, true),
    );
    check(&p, &solver);
    assert!(dev.launches() > 0);
}

#[test]
fn supernodal_engine_full_pipeline() {
    let p = HeatProblem::build_2d(5, (2, 2), Gluing::Redundant);
    let solver = FetiSolverBuilder::new()
        .options(FetiOptions::default().with_engine(Engine::Supernodal))
        .formulation(FormulationChoice::Explicit)
        .assembly(ScConfig::optimized(false, false))
        .build(&p);
    check(&p, &solver);
}

#[test]
fn chain_gluing_full_pipeline() {
    let p = HeatProblem::build_2d(4, (3, 2), Gluing::Chain);
    check(&p, &FetiSolverBuilder::new().build(&p));
}

#[test]
fn rcm_and_natural_orderings_work_end_to_end() {
    let p = HeatProblem::build_2d(3, (2, 2), Gluing::Redundant);
    for ordering in [Ordering::Rcm, Ordering::Natural, Ordering::MinimumDegree] {
        let solver = FetiSolverBuilder::new()
            .options(FetiOptions::default().with_ordering(ordering))
            .formulation(FormulationChoice::Explicit)
            .assembly(ScConfig::optimized(false, false))
            .build(&p);
        check(&p, &solver);
    }
}

#[test]
fn all_dual_approaches_are_interchangeable() {
    // all eight Table-2 approaches produce dual operators that PCPG can use
    // and that lead to the same primal solution
    let p = HeatProblem::build_2d(3, (2, 2), Gluing::Redundant);
    let d = direct(&p);
    let scale = d.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
    let device = Device::new(DeviceSpec::a100(), 2);
    for approach in DualOpApproach::ALL {
        // route through the generic FETI solver by translating the approach
        // to a (backend, formulation, config) triple where possible;
        // approaches with bespoke assembly (ExplMkl / ExplHybrid) are
        // covered by their own apply-equivalence test in sc-feti, so here we
        // spot-check the solver-compatible ones.
        let (backend, formulation, cfg) = match approach {
            DualOpApproach::ImplMkl | DualOpApproach::ImplCholmod => {
                (Backend::cpu(), FormulationChoice::Implicit, ScConfig::Auto)
            }
            DualOpApproach::ExplCholmod => (
                Backend::cpu(),
                FormulationChoice::Explicit,
                ScConfig::original(FactorStorage::Sparse),
            ),
            DualOpApproach::ExplCpuOpt => (
                Backend::cpu(),
                FormulationChoice::Explicit,
                ScConfig::optimized(false, false),
            ),
            DualOpApproach::ExplCuda => (
                Backend::gpu(Arc::clone(&device)),
                FormulationChoice::Explicit,
                ScConfig::original(FactorStorage::Sparse),
            ),
            DualOpApproach::ExplGpuOpt => (
                Backend::gpu(Arc::clone(&device)),
                FormulationChoice::Explicit,
                ScConfig::optimized(true, false),
            ),
            DualOpApproach::ExplMkl | DualOpApproach::ExplHybrid => continue,
        };
        let solver = FetiSolverBuilder::new()
            .backend(backend)
            .formulation(formulation)
            .assembly(cfg)
            .build(&p);
        let sol = solver.solve();
        assert!(sol.stats.converged, "{approach:?}");
        let u = p.gather_global(&sol.u_locals);
        for i in 0..u.len() {
            assert!(
                (u[i] - d[i]).abs() < 1e-6 * scale,
                "{approach:?} deviates at dof {i}"
            );
        }
    }
}

#[test]
fn solution_is_physical() {
    // unit source, zero Dirichlet at x=0: temperature must be positive and
    // increase monotonically with x along the centerline
    let p = HeatProblem::build_2d(6, (2, 1), Gluing::Redundant);
    let solver = FetiSolverBuilder::new().build(&p);
    let sol = solver.solve();
    let u = p.gather_global(&sol.u_locals);
    assert!(u.iter().all(|&v| v > 0.0), "temperature must be positive");
}

#[test]
fn multi_rhs_handle_amortizes_preprocessing() {
    // one preprocessed handle serves many load cases; each solve matches
    // the direct solution of its own loads
    let p = HeatProblem::build_2d(4, (2, 2), Gluing::Redundant);
    let solver = explicit(&p, Backend::cpu(), ScConfig::optimized(false, false));
    let base = direct(&p);
    let scale = base.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
    for k in 1..=4 {
        let alpha = k as f64 * 0.75;
        let loads: Vec<Vec<f64>> = p
            .subdomains
            .iter()
            .map(|sd| sd.f.iter().map(|v| alpha * v).collect())
            .collect();
        let sol = solver.solve_rhs(&loads);
        assert!(sol.stats.converged, "rhs {k}: {:?}", sol.stats);
        let u = p.gather_global(&sol.u_locals);
        for i in 0..u.len() {
            assert!(
                (u[i] - alpha * base[i]).abs() < 1e-6 * scale * alpha.max(1.0),
                "rhs {k}, dof {i}: {} vs {}",
                u[i],
                alpha * base[i]
            );
        }
    }
}
