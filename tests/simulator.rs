//! Integration tests of the GPU simulator against the algorithmic layers:
//! timeline determinism, cost-only equivalence, pool discipline under the
//! multi-stream assembly loop, and the qualitative speedup claims that the
//! figure benches rely on.

use schur_dd::prelude::*;
use schur_dd::sc_feti::SubdomainFactors;

fn center_factors_3d(c: usize) -> SubdomainFactors {
    let p = HeatProblem::build_3d(c, (2, 2, 2), Gluing::Redundant);
    SubdomainFactors::build(
        &p.subdomains[7],
        Engine::Simplicial,
        Ordering::NestedDissection,
    )
}

#[test]
fn cost_only_timeline_equals_computing_timeline() {
    let f = center_factors_3d(4);
    let l = f.chol.factor_csc();
    let cfg = ScConfig::optimized(true, true);

    let dev1 = Device::new(DeviceSpec::a100(), 1);
    {
        let kernels = GpuKernels::new(dev1.stream(0));
        let mut exec = GpuExec::new(&kernels);
        assemble_sc(&mut exec, &l, &f.bt_perm, &cfg);
    }
    let dev2 = Device::new(DeviceSpec::a100(), 1);
    {
        let kernels = GpuKernels::new_cost_only(dev2.stream(0));
        let mut exec = GpuExec::new(&kernels);
        assemble_sc(&mut exec, &l, &f.bt_perm, &cfg);
    }
    assert_eq!(dev1.launches(), dev2.launches());
    assert!((dev1.synchronize() - dev2.synchronize()).abs() < 1e-15);
}

#[test]
fn timeline_is_deterministic_across_runs() {
    let f = center_factors_3d(3);
    let l = f.chol.factor_csc();
    let cfg = ScConfig::optimized(true, true);
    let run = || {
        let dev = Device::new(DeviceSpec::a100(), 2);
        for s in 0..2 {
            let kernels = GpuKernels::new_cost_only(dev.stream(s));
            let mut exec = GpuExec::new(&kernels);
            assemble_sc(&mut exec, &l, &f.bt_perm, &cfg);
        }
        (dev.synchronize(), dev.launches(), dev.busy_seconds())
    };
    let a = run();
    let b = run();
    assert_eq!(a.1, b.1);
    assert!((a.0 - b.0).abs() < 1e-15);
    assert!((a.2 - b.2).abs() < 1e-15);
}

#[test]
fn optimized_config_reduces_simulated_flop_time_on_large_3d() {
    // the core speedup claim at kernel level on a real FEM subdomain; the
    // subdomain must be large enough to leave the launch-bound regime
    // (paper footnote 1: "for small subdomains ... overheads can dominate")
    let f = center_factors_3d(13); // 2744 dofs, the paper's "3k"
    let l = f.chol.factor_csc();
    let dev = Device::new(DeviceSpec::a100(), 1);

    let measure = |cfg: &ScConfig| {
        dev.reset();
        let kernels = GpuKernels::new_cost_only(dev.stream(0));
        let mut exec = GpuExec::new(&kernels);
        assemble_sc(&mut exec, &l, &f.bt_perm, cfg);
        dev.synchronize()
    };
    let orig = measure(&ScConfig::original(FactorStorage::Dense));
    let opt = measure(&ScConfig::optimized(true, true));
    assert!(
        opt < orig,
        "optimized ({opt:.6}s) must beat original ({orig:.6}s) at this size"
    );
}

#[test]
fn streams_overlap_reduces_makespan() {
    // assembling 4 subdomains on 4 streams must beat 1 stream
    let p = HeatProblem::build_3d(4, (2, 2, 1), Gluing::Redundant);
    let factors: Vec<SubdomainFactors> = p
        .subdomains
        .iter()
        .map(|sd| SubdomainFactors::build(sd, Engine::Simplicial, Ordering::NestedDissection))
        .collect();
    let cfg = ScConfig::optimized(true, true);
    let run = |n_streams: usize| {
        let dev = Device::new(DeviceSpec::a100(), n_streams);
        for (i, f) in factors.iter().enumerate() {
            let kernels = GpuKernels::new_cost_only(dev.stream(i % n_streams));
            let mut exec = GpuExec::new(&kernels);
            let l = f.chol.factor_csc();
            assemble_sc(&mut exec, &l, &f.bt_perm, &cfg);
        }
        dev.synchronize()
    };
    let serial = run(1);
    let parallel = run(4);
    assert!(
        parallel < serial,
        "4 streams ({parallel:.6}) must beat 1 stream ({serial:.6})"
    );
}

#[test]
fn temp_pool_bounds_inflight_memory() {
    use schur_dd::sc_gpu::TempPool;
    let pool = TempPool::new(1 << 20);
    crossbeam_scope(|scope| {
        for _ in 0..4 {
            let p = pool.clone();
            scope.spawn(move || {
                for _ in 0..100 {
                    let g = p.alloc(128 * 1024);
                    std::hint::black_box(&g);
                }
            });
        }
    });
    assert_eq!(pool.free_bytes(), 1 << 20, "all allocations returned");
    assert!(pool.high_water() <= 1 << 20);
}

/// Minimal scoped-thread helper (std scoped threads).
fn crossbeam_scope<'env, F>(f: F)
where
    F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>),
{
    std::thread::scope(f);
}

#[test]
fn device_spec_sanity() {
    let a100 = DeviceSpec::a100();
    // peak-bound sanity: 2 TF of work cannot finish faster than peak allows
    let t = a100.kernel_seconds(&schur_dd::sc_gpu::KernelCost::compute(2e12, 1e9));
    assert!(t >= 2e12 / (a100.fp64_gflops * 1e9));
    // launch-bound sanity
    let t_small = a100.kernel_seconds(&schur_dd::sc_gpu::KernelCost::compute(10.0, 80.0));
    assert!(t_small >= a100.kernel_launch_us * 1e-6);
}
