//! Property-based tests (proptest) on the core invariants: stepped-shape
//! permutation, TRSM/SYRK splitting correctness on arbitrary patterns,
//! permutation algebra, sparse Cholesky reconstruction, the temp pool,
//! and the mixed-precision refinement loop (f32-assembled solves must
//! reach f64-level accuracy on randomized 2D/3D decompositions, and the
//! default f64 path must not move a bit).

use proptest::prelude::*;
use schur_dd::prelude::*;
use schur_dd::sc_core::{run_syrk_variant, run_trsm_variant};
use schur_dd::sc_sparse::{pattern, Coo};

/// Random sparse SPD matrix via diagonally dominant construction.
fn spd_strategy(n: usize) -> impl Strategy<Value = Csc> {
    proptest::collection::vec((0usize..n, 0usize..n, -1.0f64..1.0), 0..(n * 4)).prop_map(
        move |entries| {
            let mut coo = Coo::new(n, n);
            let mut diag = vec![1.0f64; n];
            for (i, j, v) in entries {
                if i != j {
                    coo.push(i, j, v);
                    coo.push(j, i, v);
                    diag[i] += v.abs();
                    diag[j] += v.abs();
                }
            }
            for (i, d) in diag.iter().enumerate() {
                coo.push(i, i, *d + 0.5);
            }
            coo.to_csc()
        },
    )
}

/// Random gluing-like B̃ᵀ: one or a few ±1 entries per column.
fn bt_strategy(n: usize, m: usize) -> impl Strategy<Value = Csc> {
    proptest::collection::vec((0usize..n, prop::bool::ANY), m..=m).prop_map(move |cols| {
        let mut coo = Coo::new(n, m);
        for (j, (row, sign)) in cols.into_iter().enumerate() {
            coo.push(row, j, if sign { 1.0 } else { -1.0 });
        }
        coo.to_csc()
    })
}

/// Solve `problem` at `Precision::f32_refined()` (implicit or explicit
/// operators) and require the primal solution to match the direct f64
/// solve at the f64-level tolerance the pipeline tests use.
fn refined_solve_matches_direct(problem: &HeatProblem, explicit: bool) -> bool {
    let mut builder = FetiSolverBuilder::new().precision(Precision::f32_refined());
    if explicit {
        builder = builder
            .formulation(FormulationChoice::Explicit)
            .assembly(ScConfig::optimized(false, false));
    }
    let sol = builder.build(problem).solve();
    let refinement = match sol.refinement {
        Some(r) => r,
        None => return false, // the f32 path must report its refinement
    };
    if !sol.stats.converged || !refinement.converged {
        return false;
    }
    let (k, f) = problem.assemble_global();
    let direct = SparseCholesky::factorize(&k, CholOptions::default())
        .unwrap()
        .solve(&f);
    let u = problem.gather_global(&sol.u_locals);
    let scale = direct.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
    u.iter()
        .zip(&direct)
        .all(|(a, b)| (a - b).abs() < 1e-6 * scale)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn stepped_permutation_always_sorts_pivots(bt in bt_strategy(20, 12)) {
        let stepped = SteppedRhs::new(&bt);
        prop_assert!(pattern::is_stepped(&stepped.bt));
        // permutation round-trip: unpermuting the identity-permuted F works
        let m = stepped.ncols();
        let f = Mat::from_fn(m, m, |i, j| (i * m + j) as f64);
        let g = stepped.unpermute_symmetric(&f);
        // applying the permutation again must give back f
        let mut back = Mat::zeros(m, m);
        for js in 0..m {
            for is in 0..m {
                back[(is, js)] = g[(
                    stepped.col_perm.old_of_new(is),
                    stepped.col_perm.old_of_new(js),
                )];
            }
        }
        prop_assert_eq!(back, f);
    }

    #[test]
    fn sc_assembly_invariant_under_all_configs(
        a in spd_strategy(18),
        bt in bt_strategy(18, 9),
        trsm_block in 1usize..20,
        syrk_block in 1usize..20,
        prune in prop::bool::ANY,
    ) {
        let chol = SparseCholesky::factorize(&a, CholOptions::default()).unwrap();
        let l = chol.factor_csc();
        let bt_perm = bt.permute_rows(chol.perm());
        let reference = assemble_sc(
            &mut CpuExec, &l, &bt_perm, &ScConfig::original(FactorStorage::Sparse));
        for trsm in [
            TrsmVariant::RhsSplit(BlockParam::Size(trsm_block)),
            TrsmVariant::FactorSplit { block: BlockParam::Size(trsm_block), prune },
        ] {
            for syrk in [
                SyrkVariant::InputSplit(BlockParam::Size(syrk_block)),
                SyrkVariant::OutputSplit(BlockParam::Size(syrk_block)),
            ] {
                for storage in [FactorStorage::Sparse, FactorStorage::Dense] {
                    let cfg = ScConfig::Fixed(ScParams {
                        trsm, syrk, factor_storage: storage, stepped_permutation: true,
                    });
                    let f = assemble_sc(&mut CpuExec, &l, &bt_perm, &cfg);
                    let d = sc_dense::max_abs_diff(f.as_ref(), reference.as_ref());
                    prop_assert!(d < 1e-8, "{:?}/{:?}/{:?}: {}", trsm, syrk, storage, d);
                }
            }
        }
    }

    #[test]
    fn trsm_variants_preserve_zeros_above_pivots(
        a in spd_strategy(16),
        bt in bt_strategy(16, 8),
        block in 1usize..18,
    ) {
        let chol = SparseCholesky::factorize(&a, CholOptions::default()).unwrap();
        let l = chol.factor_csc();
        let stepped = SteppedRhs::new(&bt.permute_rows(chol.perm()));
        for variant in [
            TrsmVariant::Plain,
            TrsmVariant::RhsSplit(BlockParam::Size(block)),
            TrsmVariant::FactorSplit { block: BlockParam::Size(block), prune: true },
        ] {
            let mut y = stepped.to_dense();
            run_trsm_variant(
                &mut CpuExec, &l, &stepped, FactorStorage::Sparse, variant, &mut y);
            for j in 0..stepped.ncols() {
                for i in 0..stepped.pivots[j] {
                    prop_assert_eq!(y[(i, j)], 0.0, "zero destroyed at ({},{})", i, j);
                }
            }
        }
    }

    #[test]
    fn syrk_variants_agree_on_random_stepped_input(
        bt in bt_strategy(20, 10),
        block in 1usize..22,
    ) {
        let stepped = SteppedRhs::new(&bt);
        let n = stepped.nrows();
        let m = stepped.ncols();
        // fill below pivots deterministically
        let mut y = Mat::zeros(n, m);
        for j in 0..m {
            for i in stepped.pivots[j]..n {
                y[(i, j)] = ((i * 31 + j * 7) % 11) as f64 - 5.0;
            }
        }
        let mut reference = Mat::zeros(m, m);
        run_syrk_variant(&mut CpuExec, &y, &stepped, SyrkVariant::Plain, &mut reference);
        for variant in [
            SyrkVariant::InputSplit(BlockParam::Size(block)),
            SyrkVariant::OutputSplit(BlockParam::Size(block)),
        ] {
            let mut f = Mat::zeros(m, m);
            run_syrk_variant(&mut CpuExec, &y, &stepped, variant, &mut f);
            for j in 0..m {
                for i in j..m {
                    prop_assert!((f[(i, j)] - reference[(i, j)]).abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn sparse_cholesky_reconstructs_random_spd(a in spd_strategy(24)) {
        for engine in [Engine::Simplicial, Engine::Supernodal] {
            let chol = SparseCholesky::factorize(
                &a,
                CholOptions { ordering: Ordering::NestedDissection, engine },
            ).unwrap();
            let l = chol.factor_csc().to_dense();
            let ap = a.sym_perm(chol.perm()).to_dense();
            let n = a.ncols();
            for i in 0..n {
                for j in 0..=i {
                    let mut s = 0.0;
                    for k in 0..=j {
                        s += l[(i, k)] * l[(j, k)];
                    }
                    prop_assert!((s - ap[(i, j)]).abs() < 1e-8,
                        "{:?} LLᵀ mismatch at ({},{})", engine, i, j);
                }
            }
        }
    }

    #[test]
    fn f32_refined_solves_reach_f64_tolerance_2d(
        cells in 2usize..6,
        sx in 2usize..4,
        sy in 1usize..3,
        explicit in prop::bool::ANY,
        chain in prop::bool::ANY,
    ) {
        let gluing = if chain { Gluing::Chain } else { Gluing::Redundant };
        let p = HeatProblem::build_2d(cells, (sx, sy), gluing);
        prop_assert!(refined_solve_matches_direct(&p, explicit));
    }

    #[test]
    fn f32_refined_solves_reach_f64_tolerance_3d(
        cells in 2usize..4,
        shape in 0usize..3,
        explicit in prop::bool::ANY,
    ) {
        let subs = [(2, 1, 1), (2, 2, 1), (1, 1, 3)][shape];
        let p = HeatProblem::build_3d(cells, subs, Gluing::Redundant);
        prop_assert!(refined_solve_matches_direct(&p, explicit));
    }

    #[test]
    fn f64_solution_ignores_the_precision_plumbing_bitwise(
        cells in 2usize..6,
        sx in 2usize..4,
    ) {
        let p = HeatProblem::build_2d(cells, (sx, 2), Gluing::Redundant);
        let base = FetiSolverBuilder::new().build(&p).solve();
        let pinned = FetiSolverBuilder::new()
            .precision(Precision::F64)
            .build(&p)
            .solve();
        prop_assert!(base.refinement.is_none() && pinned.refinement.is_none());
        // spelling the default precision out loud must not move a single bit
        prop_assert_eq!(&base.lambda, &pinned.lambda);
        prop_assert_eq!(&base.u_locals, &pinned.u_locals);
        prop_assert_eq!(base.stats.iterations, pinned.stats.iterations);
    }

    #[test]
    fn perm_roundtrip(keys in proptest::collection::vec(0u64..1000, 15)) {
        let mut idx: Vec<usize> = (0..keys.len()).collect();
        idx.sort_by_key(|&i| keys[i]);
        let p = Perm::from_old_of_new(idx);
        let v: Vec<f64> = (0..p.len()).map(|i| i as f64).collect();
        let w = p.apply(&v);
        let back = p.apply_inverse(&w);
        prop_assert_eq!(back, v);
        let q = p.inverse();
        for i in 0..p.len() {
            prop_assert_eq!(q.new_of_old(i), p.old_of_new(i));
        }
    }
}
