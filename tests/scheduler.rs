//! Property-based tests of the §4.4 batch scheduler invariants: arena
//! admission never oversubscribes the pool, the device never executes more
//! than `concurrency` kernels at a simulated instant, per-stream subdomain
//! spans never interleave, and the scheduled numerics are bitwise identical
//! to the sequential CPU reference.

use proptest::prelude::*;
use schur_dd::prelude::*;
use schur_dd::sc_gpu::{Device, DeviceSpec};
use schur_dd::sc_sparse::{Coo, Csc};

/// A cluster of SPD subdomains with sizes drawn per subdomain — factorized
/// like the production pipeline (`(L, B̃ᵀ_permuted)` pairs).
fn cluster_strategy() -> impl Strategy<Value = Vec<(Csc, Csc)>> {
    proptest::collection::vec((3usize..9, 0usize..10, 0u64..1000), 4..12).prop_map(|subs| {
        subs.into_iter()
            .map(|(nx, m, seed)| {
                let n = nx * nx;
                let idx = |x: usize, y: usize| y * nx + x;
                let mut c = Coo::new(n, n);
                for y in 0..nx {
                    for x in 0..nx {
                        let v = idx(x, y);
                        c.push(v, v, 4.05 + (seed % 7) as f64 * 0.01);
                        if x > 0 {
                            c.push(v, idx(x - 1, y), -1.0);
                        }
                        if x + 1 < nx {
                            c.push(v, idx(x + 1, y), -1.0);
                        }
                        if y > 0 {
                            c.push(v, idx(x, y - 1), -1.0);
                        }
                        if y + 1 < nx {
                            c.push(v, idx(x, y + 1), -1.0);
                        }
                    }
                }
                let k = c.to_csc();
                let mut b = Coo::new(n, m);
                for j in 0..m {
                    let d = ((j as u64 * 7919 + seed * 131) % n as u64) as usize;
                    b.push(
                        d,
                        j,
                        if (j as u64 + seed).is_multiple_of(2) {
                            1.0
                        } else {
                            -1.0
                        },
                    );
                }
                let chol = SparseCholesky::factorize(&k, CholOptions::default()).unwrap();
                (chol.factor_csc(), b.to_csc().permute_rows(chol.perm()))
            })
            .collect()
    })
}

/// A deliberately tight device so arena admission and the concurrency cap
/// both bind: the 64 KiB arena holds one of the larger subdomains'
/// temporaries but rarely two, and only 2 kernels execute concurrently.
fn tight_device(n_streams: usize) -> std::sync::Arc<Device> {
    let spec = DeviceSpec {
        memory_bytes: 128 * 1024, // 64 KiB arena
        concurrency: 2,
        ..DeviceSpec::a100()
    };
    Device::new(spec, n_streams)
}

/// The acceptance workload of the scheduler: on a skewed heterogeneous
/// batch (≥ 16 subdomains, dof sizes spreading ≥ 4×) the scheduled GPU path
/// must report strictly lower `device.synchronize()` time than round-robin,
/// with `F̃ᵢ` bitwise identical to the sequential CPU reference.
#[test]
fn scheduled_beats_round_robin_on_the_bench_workload() {
    let w = sc_bench::BatchWorkload::build_skewed(2, &[12, 4, 6, 3]);
    assert!(w.n_subdomains() >= 16);
    assert!(w.size_spread() >= 4.0);
    let items = w.items();
    let cfg = ScConfig::optimized(true, false);

    let dev_rr = Device::new(DeviceSpec::a100(), 4);
    let rr = AssemblySession::new(
        Backend::gpu_with(
            std::sync::Arc::clone(&dev_rr),
            ScheduleOptions::default().with_policy(StreamPolicy::RoundRobin),
        ),
        cfg,
    )
    .assemble(&items);
    let dev_lpt = Device::new(DeviceSpec::a100(), 4);
    let lpt =
        AssemblySession::new(Backend::gpu(std::sync::Arc::clone(&dev_lpt)), cfg).assemble(&items);

    assert!(
        dev_lpt.synchronize() < dev_rr.synchronize(),
        "scheduled {} must strictly beat round-robin {}",
        dev_lpt.synchronize(),
        dev_rr.synchronize()
    );
    for (i, item) in items.iter().enumerate() {
        let seq = assemble_sc(&mut CpuExec, item.l, item.bt, &cfg);
        assert_eq!(lpt.f[i], seq, "scheduled F̃ deviates at {i}");
        assert_eq!(rr.f[i], seq, "round-robin F̃ deviates at {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn scheduler_invariants_hold(
        data in cluster_strategy(),
        n_streams in 1usize..5,
        lpt in prop::bool::ANY,
    ) {
        let items: Vec<BatchItem<'_>> =
            data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let dev = tight_device(n_streams);
        dev.enable_span_log();
        let cfg = ScConfig::optimized(true, false);
        let opts = ScheduleOptions::default().with_policy(
            if lpt { StreamPolicy::LptLeastLoaded } else { StreamPolicy::RoundRobin },
        );
        let res = AssemblySession::new(
            Backend::gpu_with(std::sync::Arc::clone(&dev), opts),
            cfg,
        )
        .assemble(&items);
        let report = &res.report;
        let schedule = &report.devices[0].schedule;
        let capacity = dev.temp_pool().capacity();

        // --- arena: usage from the executed schedule never exceeds capacity
        prop_assert!(report.temp_high_water() <= capacity);
        let mut events: Vec<(f64, i64)> = Vec::new();
        for e in schedule {
            prop_assert!(e.temp_bytes <= capacity, "reservation larger than arena");
            events.push((e.admitted_at, e.temp_bytes as i64));
            events.push((e.span.end.max(e.admitted_at), -(e.temp_bytes as i64)));
        }
        // releases before acquisitions at equal instants
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let mut usage = 0i64;
        for (at, delta) in events {
            usage += delta;
            prop_assert!(
                usage <= capacity as i64,
                "arena oversubscribed at t={at}: {usage} > {capacity}"
            );
        }

        // --- timeline: at most `concurrency` kernels overlap at any instant
        let kernel_spans = dev.take_span_log();
        prop_assert!(!kernel_spans.is_empty() || items.is_empty());
        let cap = dev.spec().concurrency;
        for &(_, probe) in &kernel_spans {
            let overlapping = kernel_spans
                .iter()
                .filter(|(_, s)| s.start <= probe.start && probe.start < s.end)
                .count();
            prop_assert!(
                overlapping <= cap,
                "{overlapping} kernels overlap at t={} (cap {cap})",
                probe.start
            );
        }

        // --- streams: a stream runs one subdomain at a time, in order
        // (stream_lanes groups the executed schedule per stream)
        for lane in report.devices[0].stream_lanes() {
            for w in lane.spans.windows(2) {
                prop_assert!(
                    w[1].span.start >= w[0].span.end - 1e-15,
                    "stream {}: overlapping subdomain spans", lane.stream
                );
            }
        }
        prop_assert_eq!(schedule.len(), items.len());

        // --- numerics: bitwise equal to the sequential CPU reference
        for (i, (l, bt)) in data.iter().enumerate() {
            let seq = assemble_sc(&mut CpuExec, l, bt, &cfg);
            prop_assert_eq!(&res.f[i], &seq, "subdomain {} deviates", i);
        }
    }

    #[test]
    fn mix_readiness_never_starts_early(
        data in cluster_strategy(),
        n_streams in 1usize..4,
        delays in proptest::collection::vec(0.0f64..2.0, 12),
    ) {
        let items: Vec<BatchItem<'_>> =
            data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let ready: Vec<f64> = (0..items.len()).map(|i| delays[i % delays.len()]).collect();
        let dev = tight_device(n_streams);
        let res = AssemblySession::new(
            Backend::gpu_with(
                std::sync::Arc::clone(&dev),
                ScheduleOptions::default()
                    .with_policy(StreamPolicy::LptLeastLoaded)
                    .with_ready_at(ready.clone()),
            ),
            ScConfig::optimized(true, false),
        )
        .assemble(&items);
        for e in &res.report.devices[0].schedule {
            prop_assert!(
                e.span.start >= ready[e.index] - 1e-15,
                "subdomain {} started at {} before readiness {}",
                e.index,
                e.span.start,
                ready[e.index]
            );
        }
    }
}
