//! Cross-crate integration tests of the Schur complement assembly: every
//! kernel-variant combination against the dense reference, on real FEM
//! subdomains (not synthetic patterns), in 2D and 3D.

use schur_dd::prelude::*;
use schur_dd::sc_core::assemble_sc_reference;
use schur_dd::sc_factor::schur_from_factor;
use schur_dd::sc_feti::{regularize_fixing_node, SubdomainFactors};

struct Fixture {
    kreg: Csc,
    bt: Csc,
    factors: SubdomainFactors,
}

fn fixture(dim: usize, c: usize) -> Fixture {
    let problem = if dim == 2 {
        HeatProblem::build_2d(c, (3, 3), Gluing::Redundant)
    } else {
        HeatProblem::build_3d(c, (2, 2, 2), Gluing::Redundant)
    };
    let center = if dim == 2 { 4 } else { 7 };
    let sd = &problem.subdomains[center];
    let kreg = regularize_fixing_node(&sd.k, sd.kernel.as_deref(), sd.fixing_dof, None);
    let factors = SubdomainFactors::build(sd, Engine::Simplicial, Ordering::NestedDissection);
    Fixture {
        kreg,
        bt: sd.bt.clone(),
        factors,
    }
}

#[test]
fn all_configs_match_dense_reference_2d() {
    let fx = fixture(2, 5);
    let reference = assemble_sc_reference(&fx.kreg, &fx.bt);
    let l = fx.factors.chol.factor_csc();
    for trsm in [
        TrsmVariant::Plain,
        TrsmVariant::RhsSplit(BlockParam::Size(7)),
        TrsmVariant::FactorSplit {
            block: BlockParam::Size(9),
            prune: false,
        },
        TrsmVariant::FactorSplit {
            block: BlockParam::Count(4),
            prune: true,
        },
    ] {
        for syrk in [
            SyrkVariant::Plain,
            SyrkVariant::InputSplit(BlockParam::Size(6)),
            SyrkVariant::OutputSplit(BlockParam::Count(3)),
        ] {
            for storage in [FactorStorage::Sparse, FactorStorage::Dense] {
                let cfg = ScConfig::Fixed(ScParams {
                    trsm,
                    syrk,
                    factor_storage: storage,
                    stepped_permutation: true,
                });
                let f = assemble_sc(&mut CpuExec, &l, &fx.factors.bt_perm, &cfg);
                let d = sc_dense::max_abs_diff(f.as_ref(), reference.as_ref());
                assert!(d < 1e-8, "{trsm:?}/{syrk:?}/{storage:?}: {d}");
            }
        }
    }
}

#[test]
fn optimized_configs_match_reference_3d() {
    let fx = fixture(3, 3);
    let reference = assemble_sc_reference(&fx.kreg, &fx.bt);
    let l = fx.factors.chol.factor_csc();
    for cfg in [
        ScConfig::original(FactorStorage::Dense),
        ScConfig::optimized(false, true),
        ScConfig::optimized(true, true),
    ] {
        let f = assemble_sc(&mut CpuExec, &l, &fx.factors.bt_perm, &cfg);
        let d = sc_dense::max_abs_diff(f.as_ref(), reference.as_ref());
        assert!(d < 1e-8, "{cfg:?}: {d}");
    }
}

#[test]
fn sparse_rhs_schur_equals_kernel_assembly() {
    // the expl_mkl analog must produce the same matrix as the TRSM+SYRK path
    let fx = fixture(2, 4);
    let l = fx.factors.chol.factor_csc();
    let f1 = schur_from_factor(&l, &fx.factors.chol.symbolic().parent, &fx.factors.bt_perm);
    let f2 = assemble_sc(
        &mut CpuExec,
        &l,
        &fx.factors.bt_perm,
        &ScConfig::optimized(false, false),
    );
    assert!(sc_dense::max_abs_diff(f1.as_ref(), f2.as_ref()) < 1e-8);
}

#[test]
fn gpu_assembly_bitwise_matches_cpu() {
    let fx = fixture(3, 2);
    let l = fx.factors.chol.factor_csc();
    let cfg = ScConfig::optimized(true, true);
    let f_cpu = assemble_sc(&mut CpuExec, &l, &fx.factors.bt_perm, &cfg);
    let dev = Device::new(DeviceSpec::a100(), 1);
    let kernels = GpuKernels::new(dev.stream(0));
    let mut exec = GpuExec::new(&kernels);
    let f_gpu = assemble_sc(&mut exec, &l, &fx.factors.bt_perm, &cfg);
    assert_eq!(f_cpu, f_gpu);
}

#[test]
fn stepped_permutation_ablation_changes_nothing_numerically() {
    // disabling the stepped permutation must not change the result (only the
    // performance) — the assembler falls back to plain kernels when pivots
    // are unsorted
    let fx = fixture(2, 4);
    let l = fx.factors.chol.factor_csc();
    let mut params = ScParams::optimized(false, false);
    params.stepped_permutation = true;
    let with = ScConfig::Fixed(params);
    params.stepped_permutation = false;
    let without = ScConfig::Fixed(params);
    let f1 = assemble_sc(&mut CpuExec, &l, &fx.factors.bt_perm, &with);
    let f2 = assemble_sc(&mut CpuExec, &l, &fx.factors.bt_perm, &without);
    assert!(sc_dense::max_abs_diff(f1.as_ref(), f2.as_ref()) < 1e-8);
}

#[test]
fn assembled_sc_drives_correct_feti_iteration() {
    // multiplying with the assembled F̃ must equal the implicit application
    let fx = fixture(2, 4);
    let l = fx.factors.chol.factor_csc();
    let f = assemble_sc(
        &mut CpuExec,
        &l,
        &fx.factors.bt_perm,
        &ScConfig::optimized(false, false),
    );
    let m = f.nrows();
    let p: Vec<f64> = (0..m).map(|i| ((i * 17 % 5) as f64) - 2.0).collect();
    let mut q_expl = vec![0.0; m];
    sc_dense::gemv(1.0, f.as_ref(), &p, 0.0, &mut q_expl);
    let mut q_impl = vec![0.0; m];
    schur_dd::sc_feti::dualop::apply_implicit(&fx.factors, &p, &mut q_impl);
    for i in 0..m {
        assert!((q_expl[i] - q_impl[i]).abs() < 1e-8);
    }
}
