//! End-to-end trace-audit coverage on *real* recorded schedules: every
//! bench workload's replay trace must validate hazard-free, and the
//! sanitizer must catch each of the injected hazard classes when a real
//! trace is mutated (drop a free, reorder an alloc after first use,
//! overlap two spans on one stream, oversubscribe the arena).

use proptest::prelude::*;
use sc_analyze::trace::{validate, TraceViolation};
use sc_bench::BatchWorkload;
use sc_core::{AssemblySession, Backend, ScConfig, ScheduleOptions};
use sc_gpu::{Device, DevicePool, DeviceSpec, Trace, TraceEvent};
use std::sync::OnceLock;

/// Assemble a workload on one scheduled device and return its trace.
fn gpu_trace(w: &BatchWorkload) -> Trace {
    let device = Device::new(DeviceSpec::a100(), 4);
    let report = AssemblySession::new(
        Backend::gpu_with(device, ScheduleOptions::default()),
        ScConfig::optimized(true, false),
    )
    .assemble(w.items())
    .report;
    report.devices[0]
        .trace
        .clone()
        .expect("the scheduled driver records a trace per device")
}

/// The schedule bin's skewed batch — the cheapest workload with real
/// stream contention — recorded once and shared by the mutation tests.
fn schedule_trace() -> &'static Trace {
    static TRACE: OnceLock<Trace> = OnceLock::new();
    TRACE.get_or_init(|| gpu_trace(&BatchWorkload::build_skewed(2, &[12, 4, 6, 3])))
}

#[test]
fn headline_and_schedule_traces_validate_clean() {
    let headline = gpu_trace(&BatchWorkload::build(3, 4));
    assert!(headline.n_kernels() > 0, "headline trace is empty");
    let v = validate(&headline);
    assert!(v.is_empty(), "headline workload trace flagged: {v:?}");

    let v = validate(schedule_trace());
    assert!(v.is_empty(), "schedule workload trace flagged: {v:?}");
}

#[test]
fn cluster_traces_validate_clean_on_every_device() {
    let w = BatchWorkload::build_cluster32();
    let pool = DevicePool::uniform(DeviceSpec::a100(), 4, 4);
    let report = AssemblySession::new(Backend::cluster(pool), ScConfig::optimized(true, false))
        .assemble(w.items())
        .report;
    let mut audited = 0usize;
    for d in &report.devices {
        let trace = d
            .trace
            .as_ref()
            .expect("cluster replay records a trace per device");
        let v = validate(trace);
        assert!(
            v.is_empty(),
            "cluster device {} trace flagged: {v:?}",
            d.device
        );
        audited += 1;
    }
    assert_eq!(audited, 4, "one audited trace per pool device");
}

#[test]
fn hybrid_traces_validate_clean_under_arena_pressure() {
    // arena sized between the footprint quartiles, exactly like the
    // hybrid bin: the top quarter of the batch spills to the host path
    let cfg = ScConfig::optimized(true, false);
    let w = BatchWorkload::build_mixed_fit();
    let items = w.items();
    let mut temps: Vec<usize> = items
        .iter()
        .enumerate()
        .map(|(i, it)| {
            let params = cfg.resolve(true, it.l, it.bt);
            sc_core::estimate_cost(&DeviceSpec::a100(), it.l, it.bt, &params, i).temp_bytes
        })
        .collect();
    temps.sort_unstable();
    let q = temps.len() - temps.len() / 4;
    let arena = (temps[q - 1] + temps[q]) / 2;
    let spec = DeviceSpec {
        memory_bytes: 2 * arena,
        ..DeviceSpec::a100()
    };
    let pool = DevicePool::uniform(spec, 2, 4);
    let report = AssemblySession::new(Backend::hybrid(pool), cfg)
        .assemble(&items)
        .report;
    let mut audited = 0usize;
    for d in &report.devices {
        let trace = d
            .trace
            .as_ref()
            .expect("hybrid replay records a trace per device");
        let v = validate(trace);
        assert!(
            v.is_empty(),
            "hybrid device {} trace flagged: {v:?}",
            d.device
        );
        audited += 1;
    }
    assert_eq!(audited, 2, "one audited trace per pool device");
}

/// Slot ids that both allocate and free in the trace (mutation targets).
fn freed_slots(t: &Trace) -> Vec<usize> {
    t.events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Free { slot, .. } => Some(*slot),
            _ => None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn real_trace_with_dropped_free_is_flagged_as_leak(pick in 0usize..1024) {
        let mut t = schedule_trace().clone();
        let slots = freed_slots(&t);
        prop_assert!(!slots.is_empty());
        let victim = slots[pick % slots.len()];
        t.events.retain(|e| !matches!(e, TraceEvent::Free { slot, .. } if *slot == victim));
        let v = validate(&t);
        prop_assert!(
            v.iter().any(|x| matches!(x, TraceViolation::LeakedSlot { slot, .. } if *slot == victim)),
            "dropped free of slot {victim} not reported: {v:?}"
        );
    }

    #[test]
    fn real_trace_with_alloc_after_use_is_flagged(pick in 0usize..1024) {
        let mut t = schedule_trace().clone();
        let slots = freed_slots(&t);
        prop_assert!(!slots.is_empty());
        let victim = slots[pick % slots.len()];
        // reorder: push the alloc past the slot's first kernel touch
        let first_use = t.events.iter().find_map(|e| match e {
            TraceEvent::Kernel { span, reads, writes, .. }
                if reads.contains(&victim) || writes.contains(&victim) => Some(span.start),
            _ => None,
        });
        prop_assert!(first_use.is_some(), "slot {victim} is never touched by a kernel");
        let after = first_use.expect("checked by the prop_assert above") + 1e-6;
        for e in &mut t.events {
            if let TraceEvent::Alloc { slot, at, .. } = e {
                if *slot == victim {
                    *at = at.max(after);
                }
            }
        }
        let v = validate(&t);
        prop_assert!(
            v.iter().any(|x| matches!(x, TraceViolation::UseBeforeAlloc { slot, .. } if *slot == victim)),
            "alloc-after-use of slot {victim} not reported: {v:?}"
        );
    }

    #[test]
    fn real_trace_with_overlapped_stream_spans_is_flagged(pick in 0usize..1024) {
        let mut t = schedule_trace().clone();
        // pick two temporally consecutive spans on one stream (the first
        // with positive width) and pull the second back over the first
        let pairs: Vec<(usize, usize)> = {
            let mut by_stream: Vec<Vec<usize>> = vec![Vec::new(); t.n_streams];
            for (i, (s, _)) in t.span_log.iter().enumerate() {
                by_stream[*s].push(i);
            }
            let mut pairs = Vec::new();
            for idxs in &mut by_stream {
                idxs.sort_by(|&a, &b| t.span_log[a].1.start.total_cmp(&t.span_log[b].1.start));
                for w in idxs.windows(2) {
                    let p = t.span_log[w[0]].1;
                    if p.end > p.start + 1e-9 {
                        pairs.push((w[0], w[1]));
                    }
                }
            }
            pairs
        };
        prop_assert!(!pairs.is_empty(), "no stream ran two kernels back to back");
        let (prev, second) = pairs[pick % pairs.len()];
        let stream = t.span_log[second].0;
        let prev_span = t.span_log[prev].1;
        t.span_log[second].1.start = (prev_span.start + prev_span.end) / 2.0;
        let v = validate(&t);
        prop_assert!(
            v.iter().any(|x| matches!(x, TraceViolation::StreamOverlap { stream: s, .. } if *s == stream)),
            "overlap on stream {stream} not reported: {v:?}"
        );
    }

    #[test]
    fn real_trace_with_oversubscribed_arena_is_flagged(shrink_num in 1usize..100) {
        let mut t = schedule_trace().clone();
        let max_alloc = t.events.iter().filter_map(|e| match e {
            TraceEvent::Alloc { bytes, .. } => Some(*bytes),
            _ => None,
        }).max();
        prop_assert!(max_alloc.is_some(), "trace allocates nothing");
        // capacity strictly below the largest single reservation: the
        // admission of that reservation must trip the budget check
        let cap = max_alloc.expect("checked by the prop_assert above") * shrink_num / 100;
        t.arena_capacity = cap;
        let v = validate(&t);
        prop_assert!(
            v.iter().any(|x| matches!(x, TraceViolation::ArenaOversubscribed { capacity, .. } if *capacity == cap)),
            "arena oversubscription at capacity {cap} not reported: {v:?}"
        );
    }
}
