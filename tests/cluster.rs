//! Property-based tests of the cluster-level (multi-device) partition
//! invariants: every subdomain is placed on exactly one device, no device's
//! simulated arena is oversubscribed beyond its own capacity, the cluster
//! makespan never exceeds the single-device makespan on the same hardware,
//! and the sharded numerics are bitwise identical to the sequential CPU
//! reference.

use proptest::prelude::*;
use schur_dd::prelude::*;
use schur_dd::sc_gpu::{Device, DevicePool, DeviceSpec};
use schur_dd::sc_sparse::{Coo, Csc};

/// A cluster of SPD subdomains with sizes drawn per subdomain — factorized
/// like the production pipeline (`(L, B̃ᵀ_permuted)` pairs).
fn cluster_strategy() -> impl Strategy<Value = Vec<(Csc, Csc)>> {
    proptest::collection::vec((3usize..9, 0usize..10, 0u64..1000), 4..12).prop_map(|subs| {
        subs.into_iter()
            .map(|(nx, m, seed)| {
                let n = nx * nx;
                let idx = |x: usize, y: usize| y * nx + x;
                let mut c = Coo::new(n, n);
                for y in 0..nx {
                    for x in 0..nx {
                        let v = idx(x, y);
                        c.push(v, v, 4.05 + (seed % 7) as f64 * 0.01);
                        if x > 0 {
                            c.push(v, idx(x - 1, y), -1.0);
                        }
                        if x + 1 < nx {
                            c.push(v, idx(x + 1, y), -1.0);
                        }
                        if y > 0 {
                            c.push(v, idx(x, y - 1), -1.0);
                        }
                        if y + 1 < nx {
                            c.push(v, idx(x, y + 1), -1.0);
                        }
                    }
                }
                let k = c.to_csc();
                let mut b = Coo::new(n, m);
                for j in 0..m {
                    let d = ((j as u64 * 7919 + seed * 131) % n as u64) as usize;
                    b.push(
                        d,
                        j,
                        if (j as u64 + seed).is_multiple_of(2) {
                            1.0
                        } else {
                            -1.0
                        },
                    );
                }
                let chol = SparseCholesky::factorize(&k, CholOptions::default()).unwrap();
                (chol.factor_csc(), b.to_csc().permute_rows(chol.perm()))
            })
            .collect()
    })
}

/// A memory-tight spec so arena admission binds inside each device.
fn tight_spec() -> DeviceSpec {
    DeviceSpec {
        memory_bytes: 128 * 1024, // 64 KiB arena
        concurrency: 2,
        ..DeviceSpec::a100()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn cluster_partition_invariants_hold(
        data in cluster_strategy(),
        n_devices in 1usize..5,
        n_streams in 1usize..4,
    ) {
        let items: Vec<BatchItem<'_>> =
            data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let pool = DevicePool::uniform(tight_spec(), n_devices, n_streams);
        let res = AssemblySession::new(Backend::cluster(pool.clone()), ScConfig::optimized(true, false))
            .assemble(&items);
        let report = &res.report;

        // --- every subdomain placed on exactly one device
        let mut placed: Vec<usize> = report
            .devices
            .iter()
            .flat_map(|d| d.subdomains.iter().copied())
            .collect();
        placed.sort_unstable();
        prop_assert_eq!(placed, (0..items.len()).collect::<Vec<_>>());
        prop_assert_eq!(report.subdomains.len(), items.len());
        for t in &report.subdomains {
            let d = t.device.expect("cluster places every subdomain");
            prop_assert!(report.devices[d].subdomains.contains(&t.index));
        }

        // --- no device's simulated arena exceeds its own capacity
        prop_assert_eq!(report.devices.len(), n_devices);
        for rep in &report.devices {
            let capacity = pool.device(rep.device).temp_pool().capacity();
            prop_assert!(
                rep.temp_high_water <= capacity,
                "device {}: arena high water {} > capacity {capacity}",
                rep.device,
                rep.temp_high_water
            );
            // sweep the executed schedule: committed usage never exceeds it
            let mut events: Vec<(f64, i64)> = Vec::new();
            for e in &rep.schedule {
                events.push((e.admitted_at, e.temp_bytes as i64));
                events.push((e.span.end.max(e.admitted_at), -(e.temp_bytes as i64)));
            }
            events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
            let mut usage = 0i64;
            for (at, delta) in events {
                usage += delta;
                prop_assert!(
                    usage <= capacity as i64,
                    "device {} oversubscribed at t={at}: {usage} > {capacity}",
                    rep.device
                );
            }
        }

        // --- cluster makespan never exceeds the single-device makespan on
        //     identical hardware
        let single = Device::new(tight_spec(), n_streams);
        let sres = AssemblySession::new(
            Backend::gpu(std::sync::Arc::clone(&single)),
            ScConfig::optimized(true, false),
        )
        .assemble(&items);
        prop_assert!(
            report.makespan <= sres.report.makespan * (1.0 + 1e-12),
            "cluster makespan {} over {n_devices} devices exceeds the \
             single-device makespan {}",
            report.makespan,
            sres.report.makespan
        );

        // --- numerics: bitwise equal to the sequential CPU reference
        for (i, (l, bt)) in data.iter().enumerate() {
            let seq = assemble_sc(&mut CpuExec, l, bt, &ScConfig::optimized(true, false));
            prop_assert_eq!(&res.f[i], &seq, "subdomain {} deviates", i);
        }
    }

    #[test]
    fn heterogeneous_pools_place_admissibly_and_bitwise(
        data in cluster_strategy(),
        n_streams in 1usize..4,
    ) {
        // one tight card next to a full A100: placement must respect each
        // device's own arena and numerics must stay bitwise CPU-identical
        let items: Vec<BatchItem<'_>> =
            data.iter().map(|(l, bt)| BatchItem { l, bt }).collect();
        let pool = DevicePool::heterogeneous(&[DeviceSpec::a100(), tight_spec()], n_streams);
        let cfg = ScConfig::optimized(true, false);
        let res = AssemblySession::new(Backend::cluster(pool.clone()), cfg).assemble(&items);
        for rep in &res.report.devices {
            prop_assert!(rep.temp_high_water <= pool.device(rep.device).temp_pool().capacity());
        }
        let mut placed: Vec<usize> = res
            .report
            .devices
            .iter()
            .flat_map(|d| d.subdomains.iter().copied())
            .collect();
        placed.sort_unstable();
        prop_assert_eq!(placed, (0..items.len()).collect::<Vec<_>>());
        for (i, (l, bt)) in data.iter().enumerate() {
            let seq = assemble_sc(&mut CpuExec, l, bt, &cfg);
            prop_assert_eq!(&res.f[i], &seq, "subdomain {} deviates", i);
        }
    }
}
