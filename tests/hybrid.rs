//! Property-based tests of the hybrid explicit/implicit dual-operator
//! invariants: every subdomain gets exactly one formulation, no explicit
//! placement oversubscribes its device arena, the hybrid application is
//! bitwise identical to the per-formulation reference (explicit F̃ᵢ bitwise
//! equal to the all-explicit CPU assembly, spilled subdomains through the
//! implicit pipeline), explicit-vs-implicit F·p agreement, and the
//! iteration-count extremes collapse the decision to all-explicit /
//! all-implicit.

use proptest::prelude::*;
use schur_dd::prelude::*;
use schur_dd::sc_dense;
use schur_dd::sc_gpu::KernelCost;

/// Per-subdomain shapes drawn for the planner-level properties: synthetic
/// cost/apply estimates with controlled magnitudes (pure compute, occupancy
/// saturated) plus a temp footprint.
#[derive(Clone, Debug)]
struct SynthSub {
    temp_bytes: usize,
    asm_gflops: f64,
    expl_apply_gflops: f64,
    impl_apply_gflops: f64,
}

fn synth_strategy() -> impl Strategy<Value = Vec<SynthSub>> {
    proptest::collection::vec(
        (1usize..(1 << 22), 1.0f64..100.0, 0.1f64..10.0, 0.1f64..40.0),
        1..24,
    )
    .prop_map(|subs| {
        subs.into_iter()
            .map(|(temp_bytes, asm, expl, imp)| SynthSub {
                temp_bytes,
                asm_gflops: asm,
                expl_apply_gflops: expl,
                impl_apply_gflops: imp,
            })
            .collect()
    })
}

fn estimates_of(subs: &[SynthSub]) -> (Vec<CostEstimate>, Vec<ApplyEstimate>) {
    subs.iter()
        .enumerate()
        .map(|(i, s)| {
            (
                CostEstimate {
                    index: i,
                    n_dofs: 64,
                    n_lambda: 8,
                    trsm_flops: s.asm_gflops * 1e9,
                    syrk_flops: 0.0,
                    transfer_bytes: 0.0,
                    temp_bytes: s.temp_bytes,
                    exchange_bytes: 0.0,
                    seconds: 0.0,
                },
                ApplyEstimate {
                    index: i,
                    n_lambda: 8,
                    explicit: vec![KernelCost::compute(s.expl_apply_gflops * 1e9, 0.0)],
                    implicit: vec![KernelCost::compute(s.impl_apply_gflops * 1e9, 0.0)],
                },
            )
        })
        .unzip()
}

fn slots(arenas: &[usize]) -> Vec<DeviceSlot> {
    arenas
        .iter()
        .map(|&arena_capacity| DeviceSlot {
            spec: DeviceSpec::a100(),
            arena_capacity,
            n_streams: 2,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every subdomain gets exactly one formulation; explicit-GPU is never
    /// chosen for a subdomain whose temporaries exceed every arena; the
    /// spill set is exactly the over-arena set; the chosen candidate is
    /// never costlier than the alternatives the planner was allowed.
    #[test]
    fn hybrid_plan_invariants(
        subs in synth_strategy(),
        arena_kib in 1usize..4096,
        iters in 0.0f64..2000.0,
    ) {
        let (costs, applies) = estimates_of(&subs);
        let devices = slots(&[arena_kib << 10, (arena_kib << 10) / 2]);
        let max_arena = arena_kib << 10;
        let opts = HybridPlanOptions::default().with_iters(iters);
        let plan = plan_hybrid(&costs, &applies, &devices, &opts);

        prop_assert_eq!(plan.choices.len(), subs.len());
        for (i, c) in plan.choices.iter().enumerate() {
            prop_assert_eq!(c.index, i, "one decision per subdomain, in order");
            let over = subs[i].temp_bytes > max_arena;
            prop_assert_eq!(c.spilled, over);
            prop_assert_eq!(plan.spilled.contains(&i), over);
            if over {
                prop_assert!(
                    c.formulation != Formulation::ExplicitGpu,
                    "over-arena subdomain {i} must not be placed explicitly on a device"
                );
            }
            // the decision is cost-minimal among its admissible candidates
            let host = &opts.host;
            let spec = &devices[0].spec;
            let total = |asm: f64, app: f64| asm + iters * app;
            let chosen = total(c.assembly_seconds, c.apply_seconds);
            let impl_total = total(0.0, applies[i].implicit_seconds_on(host));
            let cpu_total = total(
                costs[i].seconds_on(host),
                applies[i].explicit_seconds_on(host),
            );
            prop_assert!(chosen <= impl_total + 1e-18);
            prop_assert!(chosen <= cpu_total + 1e-18);
            if !over {
                let gpu_total = total(
                    costs[i].seconds_on(spec),
                    applies[i].explicit_seconds_on(spec),
                );
                prop_assert!(chosen <= gpu_total + 1e-18);
            }
        }
        // cost roll-up is consistent with the per-choice records
        let sum: f64 = plan
            .choices
            .iter()
            .map(|c| c.assembly_seconds + iters * c.apply_seconds)
            .sum();
        prop_assert!((plan.cost_at(iters) - sum).abs() <= 1e-15 * sum.max(1.0));
    }

    /// Iteration-count extremes collapse the decision: `iters = 0` makes
    /// every assembly pure overhead (all-implicit); `iters = ∞` leaves only
    /// the apply cost (all-explicit, spill failing over off-pool).
    #[test]
    fn hybrid_extremes_collapse(subs in synth_strategy(), arena_kib in 1usize..4096) {
        let (costs, applies) = estimates_of(&subs);
        let devices = slots(&[arena_kib << 10]);
        let zero = plan_hybrid(
            &costs,
            &applies,
            &devices,
            &HybridPlanOptions::default().with_iters(0.0),
        );
        prop_assert_eq!(zero.count_of(Formulation::Implicit), subs.len());
        let inf = plan_hybrid(
            &costs,
            &applies,
            &devices,
            &HybridPlanOptions::default().with_iters(f64::INFINITY),
        );
        // synthetic explicit applies are strictly cheaper on the host than
        // on the launch-padded GPU only sometimes — but implicit never wins
        // at infinite iterations unless its apply is strictly cheapest, in
        // which case explicit-CPU (always admissible) must still be priced
        // higher; assert the collapse through the planner's own candidates
        for c in &inf.choices {
            if c.formulation == Formulation::Implicit {
                let host = DeviceSpec::host();
                prop_assert!(
                    applies[c.index].implicit_seconds_on(&host)
                        < applies[c.index].explicit_seconds_on(&host),
                    "implicit survived iters→∞ without the cheapest apply"
                );
            }
        }
    }
}

/// Real-workload property: on a 3×3 decomposition with an arena between the
/// smallest and largest temp footprint, the hybrid solver mixes
/// formulations, never oversubscribes the arena, applies bitwise like the
/// per-formulation reference, and still solves the PDE.
#[test]
fn hybrid_solver_end_to_end_invariants() {
    use std::sync::Arc;

    let p = HeatProblem::build_2d(6, (3, 3), Gluing::Redundant);
    let cfg = ScConfig::optimized(true, true);
    let factors: Vec<SubdomainFactors> = p
        .subdomains
        .iter()
        .map(|sd| SubdomainFactors::build(sd, Engine::Simplicial, Ordering::NestedDissection))
        .collect();
    let temps: Vec<usize> = factors
        .iter()
        .map(|f| {
            let l = f.chol.factor_csc();
            let params = cfg.resolve(true, &l, &f.bt_perm);
            estimate_cost(&DeviceSpec::a100(), &l, &f.bt_perm, &params, 0).temp_bytes
        })
        .collect();
    let (lo, hi) = (*temps.iter().min().unwrap(), *temps.iter().max().unwrap());
    assert!(lo < hi);
    let arena = (lo + hi) / 2;
    let pool = DevicePool::uniform(
        DeviceSpec {
            memory_bytes: 2 * arena,
            ..DeviceSpec::a100()
        },
        2,
        2,
    );
    let solver = FetiSolverBuilder::new()
        .backend(Backend::cluster(Arc::clone(&pool)))
        .formulation(FormulationChoice::Auto(
            HybridPlanOptions::default()
                .with_iters(1e6)
                .with_allow_explicit_cpu(false)
                .with_force(HybridForce::AllExplicit),
        ))
        .assembly(cfg)
        .build(&p);
    let unified = solver.report().expect("auto mode reports");
    let report = unified.hybrid.as_ref().expect("hybrid section present");

    // exactly one formulation per subdomain; the spill set is the over-arena set
    let n = p.subdomains.len();
    assert_eq!(
        report.count_of(Formulation::ExplicitGpu)
            + report.count_of(Formulation::ExplicitCpu)
            + report.count_of(Formulation::Implicit),
        n
    );
    assert!(report.count_of(Formulation::ExplicitGpu) > 0);
    assert!(report.count_of(Formulation::Implicit) > 0);
    for (i, &t) in temps.iter().enumerate() {
        assert_eq!(report.spilled.contains(&i), t > arena, "subdomain {i}");
    }

    // no explicit placement oversubscribes its device arena
    assert!(report.arena_high_water <= arena);
    assert!(!unified.devices.is_empty(), "gpu share ran");
    for dev in &unified.devices {
        assert!(dev.temp_high_water <= pool.device(dev.device).temp_pool().capacity());
    }

    // hybrid application bitwise == mixed reference: the explicit share is
    // bitwise the all-explicit CPU assembly (record/replay property), the
    // spilled share the shared implicit pipeline. Cross-check the GPU-share
    // F̃ᵢ matrices against a fresh CPU cluster assembly too.
    let cfg = ScConfig::optimized(true, true);
    let lam: Vec<f64> = (0..p.n_lambda).map(|i| (i as f64 * 0.41).cos()).collect();
    let got = solver.apply_f(&lam);
    let mut want = vec![0.0; p.n_lambda];
    for (i, sd) in p.subdomains.iter().enumerate() {
        let pl: Vec<f64> = sd.lambda_ids.iter().map(|&gl| lam[gl]).collect();
        let mut ql = vec![0.0; sd.n_lambda()];
        if report.spilled.contains(&i) {
            apply_implicit(&factors[i], &pl, &mut ql);
        } else {
            let l = factors[i].chol.factor_csc();
            let f = assemble_sc(&mut CpuExec, &l, &factors[i].bt_perm, &cfg);
            sc_dense::gemv(1.0, f.as_ref(), &pl, 0.0, &mut ql);
        }
        for (ll, &gl) in sd.lambda_ids.iter().enumerate() {
            want[gl] += ql[ll];
        }
    }
    assert_eq!(
        got, want,
        "hybrid apply must be bitwise the mixed reference"
    );

    // the spill-tolerant cluster session agrees with the hybrid placement
    let gpu_idx: Vec<usize> = (0..n).filter(|i| !report.spilled.contains(i)).collect();
    let gpu_items: Vec<&SubdomainFactors> = gpu_idx.iter().map(|&g| &factors[g]).collect();
    let res =
        AssemblySession::new(Backend::cluster(Arc::clone(&pool)), cfg).assemble(LazyBatch::new(
            &gpu_items,
            |_, f: &&SubdomainFactors| std::borrow::Cow::Owned(f.chol.factor_csc()),
            |f| &f.bt_perm,
        ));
    assert_eq!(res.f.len(), gpu_idx.len());

    // and the solve still matches the direct solution
    let sol = solver.solve();
    assert!(sol.stats.converged, "{:?}", sol.stats);
    assert!(sol.stats.operator_applications > sol.stats.iterations);
    let (k, f_glob) = p.assemble_global();
    let chol = SparseCholesky::factorize(&k, CholOptions::default()).unwrap();
    let direct = chol.solve(&f_glob);
    let u = p.gather_global(&sol.u_locals);
    let scale = direct.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
    for i in 0..u.len() {
        assert!((u[i] - direct[i]).abs() < 1e-6 * scale, "dof {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Explicit-vs-implicit F·p agreement on real subdomains: the two
    /// formulations are algebraically the same operator, and the hoisted
    /// boundary-map implicit path is **bitwise** the original sparse
    /// formulation (the refactor may not change a single bit).
    #[test]
    fn explicit_and_implicit_fp_agree(
        cells in 3usize..7,
        seed in 0u64..1000,
        sx in 2usize..4,
        sy in 1usize..3,
    ) {
        let p = HeatProblem::build_2d(cells, (sx, sy), Gluing::Redundant);
        for sd in &p.subdomains {
            let factors =
                SubdomainFactors::build(sd, Engine::Simplicial, Ordering::NestedDissection);
            let m = sd.n_lambda();
            let n = sd.n_dofs();
            let pvec: Vec<f64> = (0..m)
                .map(|i| ((i as u64 * 2654435761 + seed) % 1000) as f64 / 500.0 - 1.0)
                .collect();

            // bitwise: hoisted map vs the pre-hoist sparse pipeline
            let mut reference = vec![0.0; m];
            let mut t = vec![0.0; n];
            factors.bt_perm.spmv(1.0, &pvec, 0.0, &mut t);
            factors.chol.solve_fwd_permuted(&mut t);
            factors.chol.solve_bwd_permuted(&mut t);
            factors.bt_perm.spmv_t(1.0, &t, 0.0, &mut reference);
            let mut fast = vec![0.0; m];
            apply_implicit(&factors, &pvec, &mut fast);
            prop_assert_eq!(&fast, &reference, "hoisted implicit path changed bits");

            // numerical: explicit F̃ p vs implicit B̃ K⁺ B̃ᵀ p
            let expl = DualOperator::explicit_cpu(&factors, &ScConfig::optimized(false, false));
            let mut qe = vec![0.0; m];
            expl.apply(&pvec, &mut qe);
            let scale = qe.iter().fold(1.0f64, |a, &b| a.max(b.abs()));
            for i in 0..m {
                prop_assert!(
                    (qe[i] - fast[i]).abs() < 1e-8 * scale,
                    "explicit {} vs implicit {} at row {i}",
                    qe[i],
                    fast[i]
                );
            }
        }
    }
}
